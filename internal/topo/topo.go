// Package topo supplies hierarchical cost models for the LogP machine: a
// pluggable mapping from a (source, destination) processor pair to the link
// parameters (L, o, g) that govern that message, plus optional per-processor
// compute-rate scaling.
//
// The paper fits one global (L, o, g) to the whole machine. Real clusters
// are tiered — intra-node links are an order of magnitude faster than
// inter-node ones, and rack-local links sit in between — and a schedule
// derived from the flat fit stops being optimal once the tiers diverge (see
// the hiertree experiment). A Model keeps the machine's processor-centric
// cost rules intact and changes only where each cost's magnitude comes from:
// a send across link (i, j) pays that link's o, spaces at that link's
// max(o, g), and flies for that link's L.
//
// Three constructors cover the common shapes:
//
//   - Flat: every link carries the base parameters. Machines built with a
//     Flat model are cycle-identical to machines built with no model at all
//     (the equivalence suite pins this).
//   - TwoTier: processors group into nodes of a fixed size; intra-node
//     messages use the node link, inter-node messages use the base (cluster)
//     parameters.
//   - ThreeTier: nodes additionally group into racks; same-rack inter-node
//     messages use the rack link.
//
// The capacity constraint stays global: the in-flight ceiling is ceil(L/g)
// of the base parameters, modeling the network-interface buffer depth, which
// is a property of the endpoint rather than of any one link.
//
// Models are immutable after construction and safe for concurrent readers,
// which the sharded flat kernel relies on.
package topo

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
)

// Link is the cost of one directed processor pair: latency L, per-endpoint
// overhead O, and gap G (minimum spacing between consecutive transmissions on
// links of this class from one processor).
type Link struct {
	L int64 `json:"l"` // latency: cycles a message spends in flight on this link
	O int64 `json:"o"` // overhead: cycles an endpoint is busy sending or receiving
	G int64 `json:"g"` // gap: minimum cycles between consecutive transmissions
}

// Validate reports whether the link is usable: no negative parameter.
func (lk Link) Validate() error {
	if lk.L < 0 || lk.O < 0 || lk.G < 0 {
		return fmt.Errorf("topo: negative link parameter in (L=%d, o=%d, g=%d)", lk.L, lk.O, lk.G)
	}
	return nil
}

// Interval is the minimum spacing between consecutive send (or receive)
// initiations over this link class at one processor: max(o, g).
func (lk Link) Interval() int64 {
	if lk.O > lk.G {
		return lk.O
	}
	return lk.G
}

// Model maps processor pairs to link costs. Implementations must be pure:
// Link(i, j) returns the same value every call, performs no allocation, and
// is safe for concurrent use — the engines call it on the per-message hot
// path and from concurrently executing shards.
type Model interface {
	// P is the machine size the model describes.
	P() int
	// Link returns the cost of the directed link src -> dst (src != dst).
	Link(src, dst int) Link
	// Rate returns processor proc's compute-time multiplier: 1 is the
	// baseline, 2 means local work takes twice as long. Engines apply it
	// before the stochastic skew and jitter factors.
	Rate(proc int) float64
	// MinOL is the minimum o+L over all links: the sharded flat kernel's
	// conservative lookahead window (capacity off) must shrink to it.
	MinOL() int64
	// MinL is the minimum L over all links: the capacity-sharded window is
	// MinL+1, and latency jitter must not exceed it.
	MinL() int64
}

// flat is the Model of the unmodified machine: one link class everywhere.
type flat struct {
	p  int
	lk Link
}

// Flat returns the model in which every link carries the base parameters.
// A machine configured with Flat(params) is cycle-identical to one with no
// topology at all; it exists so code can treat "no topology" and "trivial
// topology" uniformly.
func Flat(base core.Params) Model {
	return &flat{p: base.P, lk: Link{L: base.L, O: base.O, G: base.G}}
}

func (f *flat) P() int                 { return f.p }
func (f *flat) Link(src, dst int) Link { return f.lk }
func (f *flat) Rate(proc int) float64  { return 1 }
func (f *flat) MinOL() int64           { return f.lk.O + f.lk.L }
func (f *flat) MinL() int64            { return f.lk.L }

// twoTier groups processors into nodes of ppn consecutive IDs; the last node
// may be short when ppn does not divide P.
type twoTier struct {
	p       int
	ppn     int
	node    Link
	cluster Link
}

// TwoTier returns a node/cluster model: processors i and j share a node when
// i/procsPerNode == j/procsPerNode, and their messages then use the node
// link; all other messages use the base parameters as the cluster link. The
// base parameters double as the top tier so the flat fit of cmd/calibrate
// remains the model's pessimistic summary. procsPerNode must be in [1, P]
// (1 puts every processor in its own node, making every link a cluster
// link).
func TwoTier(base core.Params, procsPerNode int, node Link) (Model, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if err := node.Validate(); err != nil {
		return nil, err
	}
	if procsPerNode < 1 || procsPerNode > base.P {
		return nil, fmt.Errorf("topo: procsPerNode %d outside [1, P=%d]", procsPerNode, base.P)
	}
	return &twoTier{
		p:       base.P,
		ppn:     procsPerNode,
		node:    node,
		cluster: Link{L: base.L, O: base.O, G: base.G},
	}, nil
}

func (t *twoTier) P() int { return t.p }

func (t *twoTier) Link(src, dst int) Link {
	if src/t.ppn == dst/t.ppn {
		return t.node
	}
	return t.cluster
}

func (t *twoTier) Rate(proc int) float64 { return 1 }

func (t *twoTier) MinOL() int64 {
	return minInt64(t.node.O+t.node.L, t.cluster.O+t.cluster.L)
}

func (t *twoTier) MinL() int64 { return minInt64(t.node.L, t.cluster.L) }

// threeTier adds a rack tier: nodesPerRack consecutive nodes form a rack.
type threeTier struct {
	p       int
	ppn     int
	ppr     int // processors per rack = ppn * nodesPerRack
	node    Link
	rack    Link
	cluster Link
}

// ThreeTier returns a node/rack/cluster model: intra-node messages use the
// node link, same-rack inter-node messages use the rack link, and cross-rack
// messages use the base parameters as the cluster link. Racks group
// nodesPerRack consecutive nodes of procsPerNode consecutive processors.
func ThreeTier(base core.Params, procsPerNode, nodesPerRack int, node, rack Link) (Model, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if err := node.Validate(); err != nil {
		return nil, err
	}
	if err := rack.Validate(); err != nil {
		return nil, err
	}
	if procsPerNode < 1 || procsPerNode > base.P {
		return nil, fmt.Errorf("topo: procsPerNode %d outside [1, P=%d]", procsPerNode, base.P)
	}
	if nodesPerRack < 1 {
		return nil, fmt.Errorf("topo: nodesPerRack %d < 1", nodesPerRack)
	}
	return &threeTier{
		p:       base.P,
		ppn:     procsPerNode,
		ppr:     procsPerNode * nodesPerRack,
		node:    node,
		rack:    rack,
		cluster: Link{L: base.L, O: base.O, G: base.G},
	}, nil
}

func (t *threeTier) P() int { return t.p }

func (t *threeTier) Link(src, dst int) Link {
	if src/t.ppn == dst/t.ppn {
		return t.node
	}
	if src/t.ppr == dst/t.ppr {
		return t.rack
	}
	return t.cluster
}

func (t *threeTier) Rate(proc int) float64 { return 1 }

func (t *threeTier) MinOL() int64 {
	return minInt64(t.node.O+t.node.L, minInt64(t.rack.O+t.rack.L, t.cluster.O+t.cluster.L))
}

func (t *threeTier) MinL() int64 {
	return minInt64(t.node.L, minInt64(t.rack.L, t.cluster.L))
}

// rated wraps a Model with per-processor compute-rate multipliers.
type rated struct {
	Model
	rates []float64
}

// WithRates attaches per-processor compute-rate multipliers to a model:
// processor i's Compute calls stretch by rates[i] (1 is the baseline; values
// above 1 slow the processor down, mirroring a heterogeneous cluster). The
// slice is copied; it must have length m.P() and every rate must be >= 1 so
// a rate never shortens the model's unit cost below one cycle.
func WithRates(m Model, rates []float64) (Model, error) {
	if len(rates) != m.P() {
		return nil, fmt.Errorf("topo: %d rates for P=%d processors", len(rates), m.P())
	}
	for i, r := range rates {
		if r < 1 {
			return nil, fmt.Errorf("topo: rate %v for processor %d below 1", r, i)
		}
	}
	return &rated{Model: m, rates: append([]float64(nil), rates...)}, nil
}

// Rate returns the wrapped processor's multiplier.
func (r *rated) Rate(proc int) float64 { return r.rates[proc] }

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
