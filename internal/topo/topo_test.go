package topo

import (
	"strings"
	"testing"

	"github.com/logp-model/logp/internal/core"
)

func TestFlatModelIsBaseParamsEverywhere(t *testing.T) {
	base := core.Params{P: 8, L: 20, O: 2, G: 4}
	m := Flat(base)
	if m.P() != 8 {
		t.Fatalf("P = %d", m.P())
	}
	want := Link{L: 20, O: 2, G: 4}
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			if src == dst {
				continue
			}
			if lk := m.Link(src, dst); lk != want {
				t.Fatalf("Link(%d,%d) = %+v, want %+v", src, dst, lk, want)
			}
		}
	}
	if m.MinOL() != 22 || m.MinL() != 20 {
		t.Fatalf("MinOL=%d MinL=%d", m.MinOL(), m.MinL())
	}
	if m.Rate(3) != 1 {
		t.Fatalf("Rate = %v", m.Rate(3))
	}
}

func TestTwoTierLinkClasses(t *testing.T) {
	base := core.Params{P: 10, L: 20, O: 2, G: 4}
	node := Link{L: 2, O: 1, G: 1}
	m, err := TwoTier(base, 4, node)
	if err != nil {
		t.Fatal(err)
	}
	cluster := Link{L: 20, O: 2, G: 4}
	cases := []struct {
		src, dst int
		want     Link
	}{
		{0, 3, node},    // same node
		{0, 4, cluster}, // adjacent nodes
		{5, 6, node},
		{7, 8, cluster},
		{8, 9, node}, // short trailing node
		{9, 0, cluster},
	}
	for _, c := range cases {
		if lk := m.Link(c.src, c.dst); lk != c.want {
			t.Errorf("Link(%d,%d) = %+v, want %+v", c.src, c.dst, lk, c.want)
		}
	}
	if m.MinOL() != 3 {
		t.Errorf("MinOL = %d, want 3 (node o+L)", m.MinOL())
	}
	if m.MinL() != 2 {
		t.Errorf("MinL = %d, want 2 (node L)", m.MinL())
	}
}

func TestThreeTierLinkClasses(t *testing.T) {
	base := core.Params{P: 16, L: 40, O: 2, G: 4}
	node := Link{L: 2, O: 1, G: 1}
	rack := Link{L: 10, O: 2, G: 2}
	// 2 procs per node, 2 nodes per rack: racks are {0..3}, {4..7}, ...
	m, err := ThreeTier(base, 2, 2, node, rack)
	if err != nil {
		t.Fatal(err)
	}
	cluster := Link{L: 40, O: 2, G: 4}
	cases := []struct {
		src, dst int
		want     Link
	}{
		{0, 1, node},
		{0, 2, rack},
		{2, 1, rack},
		{0, 4, cluster},
		{7, 6, node},
		{5, 7, rack},
		{15, 0, cluster},
	}
	for _, c := range cases {
		if lk := m.Link(c.src, c.dst); lk != c.want {
			t.Errorf("Link(%d,%d) = %+v, want %+v", c.src, c.dst, lk, c.want)
		}
	}
	if m.MinOL() != 3 || m.MinL() != 2 {
		t.Errorf("MinOL=%d MinL=%d", m.MinOL(), m.MinL())
	}
}

func TestConstructorValidation(t *testing.T) {
	base := core.Params{P: 8, L: 20, O: 2, G: 4}
	if _, err := TwoTier(base, 0, Link{}); err == nil {
		t.Error("TwoTier accepted procsPerNode 0")
	}
	if _, err := TwoTier(base, 9, Link{}); err == nil {
		t.Error("TwoTier accepted procsPerNode > P")
	}
	if _, err := TwoTier(base, 4, Link{L: -1}); err == nil {
		t.Error("TwoTier accepted a negative link parameter")
	}
	if _, err := ThreeTier(base, 2, 0, Link{}, Link{}); err == nil {
		t.Error("ThreeTier accepted nodesPerRack 0")
	}
	if _, err := ThreeTier(base, 2, 2, Link{}, Link{G: -3}); err == nil {
		t.Error("ThreeTier accepted a negative rack parameter")
	}
}

func TestWithRates(t *testing.T) {
	base := core.Params{P: 4, L: 10, O: 1, G: 2}
	m := Flat(base)
	if _, err := WithRates(m, []float64{1, 1}); err == nil {
		t.Error("WithRates accepted a short slice")
	}
	if _, err := WithRates(m, []float64{1, 1, 0.5, 1}); err == nil {
		t.Error("WithRates accepted a rate below 1")
	}
	rates := []float64{1, 2, 1.5, 1}
	rm, err := WithRates(m, rates)
	if err != nil {
		t.Fatal(err)
	}
	rates[1] = 99 // the model must have copied
	if rm.Rate(1) != 2 || rm.Rate(2) != 1.5 || rm.Rate(0) != 1 {
		t.Fatalf("rates not applied: %v %v %v", rm.Rate(0), rm.Rate(1), rm.Rate(2))
	}
	if rm.Link(0, 1) != m.Link(0, 1) || rm.MinOL() != m.MinOL() {
		t.Error("WithRates changed the link costs")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, s := range []string{"node=4:2,1,1", "node=4:2,1,1;rack=8:6,1,2"} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
		if err := spec.Validate(64); err != nil {
			t.Errorf("Validate(%q): %v", s, err)
		}
		if _, err := spec.Build(core.Params{P: 64, L: 20, O: 2, G: 4}); err != nil {
			t.Errorf("Build(%q): %v", s, err)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"",
		"node=4",
		"node=4:1,2",
		"node=0:1,2,3",
		"node=4:1,2,3;node=4:1,2,3",
		"rack=4:1,2,3",
		"node=4:1,2,3;rack=2:1,2",
		"node=4:1,-2,3",
		"pod=4:1,2,3",
		"node=x:1,2,3",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestSpecValidateConsistency(t *testing.T) {
	s := &Spec{ProcsPerNode: 4, Node: Link{L: 2, O: 1, G: 1}, NodesPerRack: 2}
	if err := s.Validate(16); err == nil || !strings.Contains(err.Error(), "together") {
		t.Errorf("rack-less nodes_per_rack accepted: %v", err)
	}
	s = &Spec{ProcsPerNode: 32, Node: Link{}}
	if err := s.Validate(16); err == nil {
		t.Error("procs_per_node > P accepted")
	}
}

func TestTierAwareBroadcastStructure(t *testing.T) {
	base := core.Params{P: 16, L: 16, O: 1, G: 1}
	node := Link{L: 2, O: 1, G: 1}
	sched, err := TierAwareBroadcast(base, 4, node, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Root != 0 || sched.Params.P != 16 {
		t.Fatalf("root %d P %d", sched.Root, sched.Params.P)
	}
	// Every processor except the root has exactly one parent and is reachable.
	seen := 0
	for i, par := range sched.Parent {
		if i == sched.Root {
			if par != -1 {
				t.Fatalf("root parent %d", par)
			}
			continue
		}
		if par < 0 || par >= 16 {
			t.Fatalf("proc %d parent %d", i, par)
		}
		seen++
	}
	if seen != 15 {
		t.Fatalf("%d informed processors, want 15", seen)
	}
	if sched.RecvDone[sched.Root] != 0 {
		t.Fatalf("root RecvDone %d", sched.RecvDone[sched.Root])
	}
	var max int64
	edges := 0
	for p, sends := range sched.Sends {
		for _, se := range sends {
			edges++
			if sched.Parent[se.Child] != p {
				t.Fatalf("send %d->%d disagrees with Parent", p, se.Child)
			}
			if sched.RecvDone[se.Child] <= sched.RecvDone[p] {
				t.Fatalf("child %d done %d not after parent %d done %d",
					se.Child, sched.RecvDone[se.Child], p, sched.RecvDone[p])
			}
		}
	}
	if edges != 15 {
		t.Fatalf("%d edges, want 15", edges)
	}
	for _, d := range sched.RecvDone {
		if d > max {
			max = d
		}
	}
	if sched.Finish != max {
		t.Fatalf("Finish %d, max RecvDone %d", sched.Finish, max)
	}
}

func TestEvalBroadcastMatchesFlatSchedule(t *testing.T) {
	// On a flat model, evaluating OptimalBroadcast's own tree must reproduce
	// its analytic RecvDone times and Finish exactly.
	params := core.Params{P: 16, L: 10, O: 2, G: 3}
	sched, err := core.OptimalBroadcast(params, 0)
	if err != nil {
		t.Fatal(err)
	}
	recvDone, finish := EvalBroadcast(Flat(params), sched.Root, sched.Sends)
	if finish != sched.Finish {
		t.Fatalf("finish %d, schedule says %d", finish, sched.Finish)
	}
	for i := range recvDone {
		if recvDone[i] != sched.RecvDone[i] {
			t.Fatalf("proc %d RecvDone %d, schedule says %d", i, recvDone[i], sched.RecvDone[i])
		}
	}
}

func TestTierAwareBeatsFlatTreeWhenTiersDiverge(t *testing.T) {
	// Analytic version of the hiertree experiment's headline: with fast node
	// links and a slow cluster, the composed tree finishes strictly earlier
	// than the flat-optimal tree evaluated on the same tiered machine.
	node := Link{L: 2, O: 1, G: 1}
	base := core.Params{P: 32, L: 64, O: 1, G: 1}
	m, err := TwoTier(base, 4, node)
	if err != nil {
		t.Fatal(err)
	}
	flatSched, err := core.OptimalBroadcast(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, flatFinish := EvalBroadcast(m, flatSched.Root, flatSched.Sends)
	tier, err := TierAwareBroadcast(base, 4, node, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tier.Finish >= flatFinish {
		t.Fatalf("tier-aware %d not better than flat-optimal %d on the tiered machine",
			tier.Finish, flatFinish)
	}
}
