package topo_test

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/topo"
)

// A two-tier machine: 8 processors in nodes of 4. Links within a node are
// cheap; links between nodes carry the base (cluster) parameters. The model
// plugs into either engine through Config.Topology.
func ExampleTwoTier() {
	base := core.Params{P: 8, L: 12, O: 2, G: 4}
	model, err := topo.TwoTier(base, 4, topo.Link{L: 2, O: 1, G: 1})
	if err != nil {
		panic(err)
	}
	intra := model.Link(0, 3) // same node
	inter := model.Link(0, 4) // across nodes
	fmt.Printf("intra-node: L=%d o=%d g=%d\n", intra.L, intra.O, intra.G)
	fmt.Printf("inter-node: L=%d o=%d g=%d\n", inter.L, inter.O, inter.G)

	res, err := logp.Run(logp.Config{Params: base, Topology: model}, func(p *logp.Proc) {
		switch p.ID() {
		case 0:
			p.Send(3, 0, "near") // done at 2o+L of the node link = 4
			p.Send(4, 0, "far")  // initiates at 1, done at 1 + 2o+L of the base tier = 17
		case 3, 4:
			p.Recv()
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("run time:", res.Time)
	// Output:
	// intra-node: L=2 o=1 g=1
	// inter-node: L=12 o=2 g=4
	// run time: 17
}
