package topo

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/logp-model/logp/internal/core"
)

// Spec is the serializable description of a tiered topology, shared by the
// -tier CLI flags and the Topology block of service.JobSpec. The base (L, o,
// g) of the machine it attaches to acts as the top (cluster) tier, so a Spec
// carries only the inner tiers: the node link always, the rack tier
// optionally. The zero ProcsPerNode is invalid — "no topology" is expressed
// by omitting the Spec entirely, which is what keeps flat job specs (and
// their content hashes) byte-identical to the pre-topology encoding.
type Spec struct {
	// ProcsPerNode groups consecutive processor IDs into nodes; must be in
	// [1, P].
	ProcsPerNode int `json:"procs_per_node"`
	// NodesPerRack, when positive, adds a rack tier grouping consecutive
	// nodes; it requires Rack. Zero means two tiers only.
	NodesPerRack int `json:"nodes_per_rack,omitempty"`
	// Node is the intra-node link.
	Node Link `json:"node"`
	// Rack is the same-rack inter-node link (three-tier specs only).
	Rack *Link `json:"rack,omitempty"`
}

// Validate checks the spec against a machine of p processors without
// building a model.
func (s *Spec) Validate(p int) error {
	if s.ProcsPerNode < 1 || s.ProcsPerNode > p {
		return fmt.Errorf("topo: procs_per_node %d outside [1, P=%d]", s.ProcsPerNode, p)
	}
	if err := s.Node.Validate(); err != nil {
		return err
	}
	if (s.NodesPerRack > 0) != (s.Rack != nil) {
		return fmt.Errorf("topo: nodes_per_rack and rack must be set together")
	}
	if s.NodesPerRack < 0 {
		return fmt.Errorf("topo: negative nodes_per_rack %d", s.NodesPerRack)
	}
	if s.Rack != nil {
		if err := s.Rack.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Build constructs the Model the spec describes over base, whose (L, o, g)
// is the cluster tier.
func (s *Spec) Build(base core.Params) (Model, error) {
	if err := s.Validate(base.P); err != nil {
		return nil, err
	}
	if s.Rack != nil {
		return ThreeTier(base, s.ProcsPerNode, s.NodesPerRack, s.Node, *s.Rack)
	}
	return TwoTier(base, s.ProcsPerNode, s.Node)
}

// String renders the spec in ParseSpec's flag syntax.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "node=%d:%d,%d,%d", s.ProcsPerNode, s.Node.L, s.Node.O, s.Node.G)
	if s.Rack != nil {
		fmt.Fprintf(&b, ";rack=%d:%d,%d,%d", s.NodesPerRack, s.Rack.L, s.Rack.O, s.Rack.G)
	}
	return b.String()
}

// ParseSpec parses the -tier flag syntax:
//
//	node=<procsPerNode>:<L>,<o>,<g>[;rack=<nodesPerRack>:<L>,<o>,<g>]
//
// e.g. "node=4:2,1,1" for a two-tier machine of 4-processor nodes with fast
// intra-node links, or "node=4:2,1,1;rack=8:6,1,2" to add a rack tier. The
// machine's -L/-o/-g (or the JobSpec machine block) remain the cluster tier.
func ParseSpec(s string) (*Spec, error) {
	spec := &Spec{}
	for _, part := range strings.Split(s, ";") {
		name, rest, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("topo: tier %q is not name=count:L,o,g", part)
		}
		count, link, err := parseTier(rest)
		if err != nil {
			return nil, fmt.Errorf("topo: tier %q: %v", part, err)
		}
		switch name {
		case "node":
			if spec.ProcsPerNode != 0 {
				return nil, fmt.Errorf("topo: duplicate node tier")
			}
			spec.ProcsPerNode, spec.Node = count, link
		case "rack":
			if spec.Rack != nil {
				return nil, fmt.Errorf("topo: duplicate rack tier")
			}
			lk := link
			spec.NodesPerRack, spec.Rack = count, &lk
		default:
			return nil, fmt.Errorf("topo: unknown tier %q (want node or rack)", name)
		}
	}
	if spec.ProcsPerNode == 0 {
		return nil, fmt.Errorf("topo: missing node tier")
	}
	return spec, nil
}

// parseTier parses "<count>:<L>,<o>,<g>".
func parseTier(s string) (int, Link, error) {
	countStr, rest, ok := strings.Cut(s, ":")
	if !ok {
		return 0, Link{}, fmt.Errorf("missing ':' between group size and parameters")
	}
	count, err := strconv.Atoi(strings.TrimSpace(countStr))
	if err != nil {
		return 0, Link{}, fmt.Errorf("group size %q: %v", countStr, err)
	}
	if count < 1 {
		return 0, Link{}, fmt.Errorf("group size %d < 1", count)
	}
	fields := strings.Split(rest, ",")
	if len(fields) != 3 {
		return 0, Link{}, fmt.Errorf("want three parameters L,o,g, got %d", len(fields))
	}
	var v [3]int64
	for i, f := range fields {
		v[i], err = strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return 0, Link{}, fmt.Errorf("parameter %q: %v", f, err)
		}
	}
	lk := Link{L: v[0], O: v[1], G: v[2]}
	if err := lk.Validate(); err != nil {
		return 0, Link{}, err
	}
	return count, lk, nil
}
