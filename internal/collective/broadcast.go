// Package collective provides reusable communication operations on the LogP
// machine: broadcasts (optimal, binomial, linear), reductions (the optimal
// summation schedule of Section 3.3 and baselines), all-to-all exchanges with
// the naive and staggered schedules of Section 4.1.2, scatter/gather, scans,
// and a message-based dissemination barrier.
//
// All operations are SPMD: every processor of the machine calls the same
// function, and the simulator charges the model costs.
package collective

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

// Broadcast delivers data from the schedule's root to every processor by
// executing the optimal broadcast schedule (Figure 3). Every processor must
// call it; it returns the datum. The run completes at exactly the schedule's
// Finish time on an otherwise idle machine.
func Broadcast(p *logp.Proc, s *core.BroadcastSchedule, tag int, data any) any {
	if p.P() != s.Params.P {
		panic(fmt.Sprintf("collective: schedule for P=%d on machine with P=%d", s.Params.P, p.P()))
	}
	me := p.ID()
	if me != s.Root {
		data = p.RecvTag(tag).Data
	}
	for _, ev := range s.Sends[me] {
		p.Send(ev.Child, tag, data)
	}
	return data
}

// BinomialBroadcast is the classic binomial-tree broadcast, the baseline
// schedule natural under models that lack the gap parameter. Returns the
// datum on every processor.
func BinomialBroadcast(p *logp.Proc, root, tag int, data any) any {
	P := p.P()
	r := (p.ID() - root + P) % P // rank relative to the root
	mask := 1
	for mask < P {
		if r&mask != 0 {
			data = p.RecvTag(tag).Data // from r - mask
			break
		}
		mask <<= 1
	}
	// Forward to the subtree below the bit we joined on, largest first.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if dst := r + mask; dst < P {
			p.Send((dst+root)%P, tag, data)
		}
	}
	return data
}

// LinearBroadcast has the root send to every other processor directly: the
// worst reasonable schedule, P-1 consecutive sends at the root.
func LinearBroadcast(p *logp.Proc, root, tag int, data any) any {
	if p.ID() == root {
		for i := 1; i < p.P(); i++ {
			p.Send((root+i)%p.P(), tag, data)
		}
		return data
	}
	return p.RecvTag(tag).Data
}
