package collective

import (
	"testing"
	"testing/quick"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

var fig3 = core.Params{P: 8, L: 6, O: 2, G: 4}

func mustRun(t *testing.T, cfg logp.Config, body func(p *logp.Proc)) logp.Result {
	t.Helper()
	res, err := logp.Run(cfg, body)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOptimalBroadcastExecutesAtPredictedTime is the central validation of
// the machine against the model: executing the Figure 3 schedule on the
// simulator completes at exactly the analytic finish time, 24 cycles.
func TestOptimalBroadcastExecutesAtPredictedTime(t *testing.T) {
	s, err := core.OptimalBroadcast(fig3, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]any, fig3.P)
	res := mustRun(t, logp.Config{Params: fig3}, func(p *logp.Proc) {
		got[p.ID()] = Broadcast(p, s, 1, "datum")
	})
	if res.Time != 24 {
		t.Errorf("simulated broadcast time %d, want 24 (Figure 3)", res.Time)
	}
	for i, v := range got {
		if v != "datum" {
			t.Errorf("proc %d got %v", i, v)
		}
	}
	if res.TotalStall() != 0 {
		t.Errorf("optimal broadcast stalled %d cycles", res.TotalStall())
	}
}

// TestBroadcastTimingMatchesScheduleProperty: for random parameters, the
// simulated completion time equals the schedule's analytic Finish. This
// pins the machine's timing rules to the model's.
func TestBroadcastTimingMatchesScheduleProperty(t *testing.T) {
	f := func(pp, ll, oo, gg uint8) bool {
		params := core.Params{
			P: int(pp%32) + 1,
			L: int64(ll % 40),
			O: int64(oo % 12),
			G: int64(gg%12) + 1,
		}
		s, err := core.OptimalBroadcast(params, 0)
		if err != nil {
			return false
		}
		res, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
			Broadcast(p, s, 1, 42)
		})
		if err != nil {
			return false
		}
		return res.Time == s.Finish
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastFromNonzeroRoot(t *testing.T) {
	s, err := core.OptimalBroadcast(fig3, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, logp.Config{Params: fig3}, func(p *logp.Proc) {
		if got := Broadcast(p, s, 1, 7); got != 7 {
			t.Errorf("proc %d got %v", p.ID(), got)
		}
	})
	if res.Time != 24 {
		t.Errorf("time %d, want 24", res.Time)
	}
}

func TestBinomialBroadcastDeliversToAll(t *testing.T) {
	for _, P := range []int{1, 2, 3, 5, 8, 13, 16} {
		params := core.Params{P: P, L: 6, O: 2, G: 4}
		for root := 0; root < P; root += 3 {
			got := make([]any, P)
			mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
				got[p.ID()] = BinomialBroadcast(p, root, 1, "x")
			})
			for i, v := range got {
				if v != "x" {
					t.Errorf("P=%d root=%d: proc %d got %v", P, root, i, v)
				}
			}
		}
	}
}

func TestLinearBroadcastDeliversToAll(t *testing.T) {
	params := core.Params{P: 6, L: 6, O: 2, G: 4}
	got := make([]any, 6)
	res := mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		got[p.ID()] = LinearBroadcast(p, 2, 1, 99)
	})
	for i, v := range got {
		if v != 99 {
			t.Errorf("proc %d got %v", i, v)
		}
	}
	if want := core.LinearBroadcastTime(params); res.Time != want {
		t.Errorf("linear broadcast time %d, want %d", res.Time, want)
	}
}

// TestOptimalBroadcastNeverSlowerSimulated compares simulated times of the
// three broadcast schedules on the Figure 3 machine.
func TestOptimalBroadcastNeverSlowerSimulated(t *testing.T) {
	s, err := core.OptimalBroadcast(fig3, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := mustRun(t, logp.Config{Params: fig3}, func(p *logp.Proc) { Broadcast(p, s, 1, 0) })
	bin := mustRun(t, logp.Config{Params: fig3}, func(p *logp.Proc) { BinomialBroadcast(p, 0, 1, 0) })
	lin := mustRun(t, logp.Config{Params: fig3}, func(p *logp.Proc) { LinearBroadcast(p, 0, 1, 0) })
	if opt.Time > bin.Time || opt.Time > lin.Time {
		t.Errorf("optimal %d vs binomial %d vs linear %d", opt.Time, bin.Time, lin.Time)
	}
}

// TestFigure4SummationExecutesAtDeadline: executing the Figure 4 schedule
// (T=28, P=8, L=5, o=2, g=4) sums 79 values and the root finishes at
// exactly 28 cycles.
func TestFigure4SummationExecutesAtDeadline(t *testing.T) {
	params := core.Params{P: 8, L: 5, O: 2, G: 4}
	s, err := core.OptimalSummation(params, 28)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, s.TotalValues)
	var want float64
	for i := range values {
		values[i] = float64(i + 1)
		want += values[i]
	}
	dist, err := DistributeInputs(s, values)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	res := mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		if sum, ok := SumOptimal(p, s, 1, dist[p.ID()]); ok {
			got = sum
		}
	})
	if res.Time != 28 {
		t.Errorf("simulated summation time %d, want 28 (Figure 4)", res.Time)
	}
	if got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

// TestSummationTimingMatchesScheduleProperty: for random parameters and
// deadlines, executing the schedule finishes exactly at the deadline
// (the schedule keeps the root busy through its last cycle).
func TestSummationTimingMatchesScheduleProperty(t *testing.T) {
	f := func(tt uint16, pp, ll, oo, gg uint8) bool {
		params := core.Params{
			P: int(pp%16) + 1,
			L: int64(ll % 30),
			O: int64(oo % 8),
			G: int64(gg%8) + 1,
		}
		deadline := int64(tt % 200)
		s, err := core.OptimalSummation(params, deadline)
		if err != nil {
			return false
		}
		values := make([]float64, s.TotalValues)
		for i := range values {
			values[i] = 1
		}
		dist, err := DistributeInputs(s, values)
		if err != nil {
			return false
		}
		var got float64
		res, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
			if sum, ok := SumOptimal(p, s, 1, dist[p.ID()]); ok {
				got = sum
			}
		})
		if err != nil {
			return false
		}
		return res.Time == deadline && got == float64(s.TotalValues)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDistributeInputsRejectsWrongCount(t *testing.T) {
	params := core.Params{P: 8, L: 5, O: 2, G: 4}
	s, err := core.OptimalSummation(params, 28)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DistributeInputs(s, make([]float64, 3)); err == nil {
		t.Error("wrong input count accepted")
	}
}

func TestBinomialReduce(t *testing.T) {
	params := core.Params{P: 7, L: 6, O: 2, G: 4}
	var got any
	mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		v, ok := BinomialReduce(p, 3, 1, p.ID(), func(a, b any) any { return a.(int) + b.(int) })
		if ok {
			if p.ID() != 3 {
				t.Errorf("reduce completed on proc %d, root is 3", p.ID())
			}
			got = v
		}
	})
	if got != 21 { // 0+1+...+6
		t.Errorf("reduce = %v, want 21", got)
	}
}

func TestLocalThenReduce(t *testing.T) {
	params := core.Params{P: 4, L: 6, O: 2, G: 4}
	local := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	var got float64
	res := mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		if v, ok := LocalThenReduce(p, 0, 1, local[p.ID()]); ok {
			got = v
		}
	})
	if got != 36 {
		t.Errorf("sum = %v, want 36", got)
	}
	// Honest LogP cost: local chain (1 cycle) + 2 rounds of (2o+L+1).
	if want := core.BinaryTreeSumTime(params, 8); res.Time > want {
		t.Errorf("simulated %d exceeds analytic bound %d", res.Time, want)
	}
}

func TestAllToAllDeliversEverything(t *testing.T) {
	params := core.Params{P: 4, L: 6, O: 2, G: 4}
	for _, sched := range []Schedule{Naive, Staggered, RandomOrder} {
		perPair := 3
		counts := func(me int) []int {
			c := make([]int, 4)
			for d := range c {
				if d != me {
					c[d] = perPair
				}
			}
			return c
		}
		received := make([][]logp.Message, 4)
		mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
			received[p.ID()] = AllToAll(p, sched, 1, counts(p.ID()),
				func(dst, k int) any { return p.ID()*100 + dst*10 + k },
				perPair*3, 0)
		})
		for me, msgs := range received {
			if len(msgs) != perPair*3 {
				t.Fatalf("%v: proc %d received %d messages, want %d", sched, me, len(msgs), perPair*3)
			}
			seen := map[int]bool{}
			for _, m := range msgs {
				v := m.Data.(int)
				if v%100/10 != me {
					t.Errorf("%v: proc %d got message for %d", sched, me, v%100/10)
				}
				if seen[v] {
					t.Errorf("%v: duplicate payload %d", sched, v)
				}
				seen[v] = true
			}
		}
	}
}

// TestStaggeredBeatsNaive: the contention-free staggered schedule is faster
// than the naive one, which serializes on each destination's receive gap in
// turn (Section 4.1.2 / Figure 6).
func TestStaggeredBeatsNaive(t *testing.T) {
	params := core.Params{P: 8, L: 6, O: 2, G: 4}
	perPair := 8
	run := func(sched Schedule) int64 {
		counts := make([]int, 8)
		res := mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
			c := make([]int, 8)
			copy(c, counts)
			for d := range c {
				if d != p.ID() {
					c[d] = perPair
				}
			}
			AllToAll(p, sched, 1, c, func(dst, k int) any { return 0 }, perPair*7, 0)
		})
		return res.Time
	}
	naive, staggered := run(Naive), run(Staggered)
	if staggered >= naive {
		t.Errorf("staggered %d not faster than naive %d", staggered, naive)
	}
}

func TestMessageBarrier(t *testing.T) {
	params := core.Params{P: 8, L: 6, O: 2, G: 4}
	released := make([]int64, 8)
	arrive := make([]int64, 8)
	mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		p.Compute(int64(5 * p.ID()))
		arrive[p.ID()] = p.Now()
		Barrier(p, 100)
		released[p.ID()] = p.Now()
	})
	latest := int64(0)
	for _, a := range arrive {
		if a > latest {
			latest = a
		}
	}
	for i, r := range released {
		if r < latest {
			t.Errorf("proc %d released at %d before last arrival %d", i, r, latest)
		}
	}
	if BarrierRounds(8) != 3 {
		t.Errorf("BarrierRounds(8) = %d, want 3", BarrierRounds(8))
	}
}

func TestBarrierSingleProcessor(t *testing.T) {
	params := core.Params{P: 1, L: 6, O: 2, G: 4}
	res := mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		Barrier(p, 1)
	})
	if res.Time != 0 {
		t.Errorf("P=1 barrier took %d", res.Time)
	}
}

func TestScanComputesPrefixes(t *testing.T) {
	params := core.Params{P: 9, L: 6, O: 2, G: 4}
	got := make([]int, 9)
	mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		v := Scan(p, 50, p.ID()+1, func(a, b any) any { return a.(int) + b.(int) })
		got[p.ID()] = v.(int)
	})
	for i, v := range got {
		want := (i + 1) * (i + 2) / 2
		if v != want {
			t.Errorf("scan[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestGatherScatter(t *testing.T) {
	params := core.Params{P: 5, L: 6, O: 2, G: 4}
	mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		msgs := Gather(p, 2, 7, p.ID())
		if p.ID() == 2 {
			if len(msgs) != 4 {
				t.Errorf("gathered %d, want 4", len(msgs))
			}
		} else if msgs != nil {
			t.Errorf("non-root gather returned %v", msgs)
		}
		var values []any
		if p.ID() == 2 {
			values = []any{"a", "b", "c", "d", "e"}
		}
		v := Scatter(p, 2, 8, values)
		want := string(rune('a' + p.ID()))
		if v != want {
			t.Errorf("proc %d scattered %v, want %v", p.ID(), v, want)
		}
	})
}

// TestBroadcastCorrectUnderJitter: with latency jitter (messages reordered,
// early arrivals) every broadcast still delivers to everyone — correctness
// must hold under all interleavings consistent with the latency bound.
//
// Note the running time is NOT asserted to stay within the deterministic
// worst case: the paper's footnote 2 observes "anomalous situations in which
// reducing the latency of certain messages actually increases the running
// time", and the simulator reproduces them (an early arrival can claim the
// receive gap and delay a critical later reception).
func TestBroadcastCorrectUnderJitter(t *testing.T) {
	params := core.Params{P: 16, L: 20, O: 2, G: 4}
	s, err := core.OptimalBroadcast(params, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		cfg := logp.Config{Params: params, LatencyJitter: 15, Seed: seed}
		got := make([]any, 16)
		res, err := logp.Run(cfg, func(p *logp.Proc) {
			got[p.ID()] = Broadcast(p, s, 1, "v")
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != "v" {
				t.Errorf("seed %d: proc %d got %v", seed, i, v)
			}
		}
		// Sanity: jitter only ever shortens individual flights, so the run
		// cannot exceed the deterministic bound by more than the slack one
		// delayed reception can add per tree level (coarse bound).
		if res.Time > s.Finish+int64(16)*params.SendInterval() {
			t.Errorf("seed %d: jittered run %d wildly exceeds %d", seed, res.Time, s.Finish)
		}
	}
}
