package collective

import (
	"fmt"

	"github.com/logp-model/logp/internal/logp"
)

// Schedule selects the destination ordering of an all-to-all exchange
// (Section 4.1.2).
type Schedule int

const (
	// Naive sends all traffic to processor 0 first, then 1, and so on:
	// every processor floods the same destination at once, serializing on
	// the receiver's gap and stalling on the capacity constraint.
	Naive Schedule = iota
	// Staggered starts processor i at destination i+1 and wraps around, so
	// at every moment each destination has exactly one sender: the
	// contention-free schedule.
	Staggered
	// RandomOrder permutes destinations independently per processor: a
	// middle ground, with birthday-collision contention.
	RandomOrder
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case Naive:
		return "naive"
	case Staggered:
		return "staggered"
	case RandomOrder:
		return "random"
	}
	return fmt.Sprintf("schedule(%d)", int(s))
}

// AllToAll performs a personalized all-to-all exchange. Processor p sends
// counts[d] messages to each destination d (counts[p.ID()] must be 0), with
// payload(d, k) producing the k-th message for destination d. It receives
// messages until it has collected expect of them, interleaving receptions
// with sends so that the processor is never idle while traffic is pending.
// WorkPerMsg cycles of local computation are charged before each send,
// modeling the per-point load/store cost of Section 4.1.4.
func AllToAll(p *logp.Proc, sched Schedule, tag int, counts []int, payload func(dst, k int) any, expect int, workPerMsg int64) []logp.Message {
	P := p.P()
	me := p.ID()
	if len(counts) != P {
		panic(fmt.Sprintf("collective: counts len %d, P=%d", len(counts), P))
	}
	if counts[me] != 0 {
		panic("collective: nonzero self count in all-to-all")
	}
	order := destinationOrder(sched, P, me, p)
	recvd := make([]logp.Message, 0, expect)

	k := make([]int, P) // next message index per destination
	di := 0             // position in the destination order
	take := func(m logp.Message) {
		if m.Tag != tag {
			panic(fmt.Sprintf("collective: unexpected tag %d during all-to-all %d", m.Tag, tag))
		}
		recvd = append(recvd, m)
	}
	for di < len(order) || len(recvd) < expect {
		// Drain arrivals first: receiving is what unblocks remote senders.
		if p.HasMessage() && len(recvd) < expect {
			take(p.Recv())
			continue
		}
		if di < len(order) {
			dst := order[di]
			if k[dst] >= counts[dst] {
				di++
				continue
			}
			if workPerMsg > 0 {
				p.Compute(workPerMsg)
			}
			p.Send(dst, tag, payload(dst, k[dst]))
			k[dst]++
			continue
		}
		// Nothing to send; block for the remaining receptions.
		take(p.Recv())
	}
	return recvd
}

// destinationOrder produces the destination sequence for a schedule.
func destinationOrder(sched Schedule, P, me int, p *logp.Proc) []int {
	order := make([]int, 0, P-1)
	switch sched {
	case Naive:
		for d := 0; d < P; d++ {
			if d != me {
				order = append(order, d)
			}
		}
	case Staggered:
		for i := 1; i < P; i++ {
			order = append(order, (me+i)%P)
		}
	case RandomOrder:
		for i := 1; i < P; i++ {
			order = append(order, (me+i)%P)
		}
		rng := p.Rand()
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
	default:
		panic(fmt.Sprintf("collective: unknown schedule %d", sched))
	}
	return order
}

// Gather collects one message from every other processor at root, returning
// them in arrival order (root's own value is not included). Non-roots send
// and return nil.
func Gather(p *logp.Proc, root, tag int, value any) []logp.Message {
	if p.ID() != root {
		p.Send(root, tag, value)
		return nil
	}
	out := make([]logp.Message, 0, p.P()-1)
	for len(out) < p.P()-1 {
		out = append(out, p.RecvTag(tag))
	}
	return out
}

// Scatter sends values[i] from root to processor i and returns the local
// value on every processor. values[root] is returned directly at the root.
func Scatter(p *logp.Proc, root, tag int, values []any) any {
	if p.ID() == root {
		if len(values) != p.P() {
			panic(fmt.Sprintf("collective: scatter of %d values on P=%d", len(values), p.P()))
		}
		for i := 1; i < p.P(); i++ {
			dst := (root + i) % p.P()
			p.Send(dst, tag, values[dst])
		}
		return values[root]
	}
	return p.RecvTag(tag).Data
}
