package collective

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

// DistributeInputs splits values across processors according to the optimal
// summation schedule's (uneven) input distribution: processor i receives the
// next InputCounts slice in processor order. Unused processors get nil. The
// schedule sums exactly s.TotalValues inputs; len(values) must match.
func DistributeInputs(s *core.SumSchedule, values []float64) ([][]float64, error) {
	if int64(len(values)) != s.TotalValues {
		return nil, fmt.Errorf("collective: %d values for a schedule of %d", len(values), s.TotalValues)
	}
	out := make([][]float64, s.Params.P)
	next := 0
	for id, node := range s.ByProc {
		if node == nil {
			continue
		}
		out[id] = values[next : next+node.LocalInputs]
		next += node.LocalInputs
	}
	return out, nil
}

// SumOptimal executes the optimal summation schedule (Figure 4) on the
// machine. Every processor calls it with its local input slice (from
// DistributeInputs). The global sum is returned on the schedule's root
// processor with ok=true; other processors return ok=false.
//
// The execution interleaves local additions with receptions exactly as the
// schedule prescribes — an initial chain, then per reception period: o cycles
// receiving, one cycle adding the received partial sum, and g-o-1 local
// additions — so the root finishes at precisely the schedule deadline on an
// otherwise idle machine.
func SumOptimal(p *logp.Proc, s *core.SumSchedule, tag int, local []float64) (float64, bool) {
	node := s.ByProc[p.ID()]
	if node == nil {
		return 0, false // pruned processor: not part of the schedule
	}
	if len(local) != node.LocalInputs {
		panic(fmt.Sprintf("collective: proc %d given %d inputs, schedule says %d", p.ID(), len(local), node.LocalInputs))
	}
	params := s.Params
	period := params.G
	if period < params.O+1 {
		period = params.O + 1
	}
	betweens := period - params.O - 1 // local additions between receptions

	sum := local[0]
	remaining := local[1:]
	chain := func(n int64) {
		for i := int64(0); i < n; i++ {
			sum += remaining[0]
			remaining = remaining[1:]
		}
		p.Compute(n)
	}

	k := int64(len(node.Children))
	if k == 0 {
		chain(int64(len(remaining)))
	} else {
		initial := int64(len(remaining)) - (k-1)*betweens
		if initial < 0 {
			panic(fmt.Sprintf("collective: proc %d schedule underflow (initial=%d)", p.ID(), initial))
		}
		chain(initial)
		for i := k - 1; i >= 0; i-- { // receptions in arrival order (earliest first)
			m := p.RecvTag(tag)
			sum += m.Data.(float64)
			p.Compute(1)
			if i > 0 {
				chain(betweens)
			}
		}
	}
	if node.Parent != nil {
		p.Send(node.Parent.Proc, tag, sum)
		return sum, false
	}
	return sum, true
}

// BinomialReduce folds values with op up a binomial tree to the root: the
// natural baseline reduction. Each combining step charges one cycle of
// computation. Returns the reduction on the root with ok=true.
func BinomialReduce(p *logp.Proc, root, tag int, value any, op func(a, b any) any) (any, bool) {
	P := p.P()
	r := (p.ID() - root + P) % P
	mask := 1
	for ; mask < P; mask <<= 1 {
		if r&mask != 0 {
			p.Send((r-mask+root)%P, tag, value)
			return value, false
		}
		if src := r + mask; src < P {
			m := p.RecvTag(tag)
			value = op(value, m.Data)
			p.Compute(1)
		}
	}
	return value, true
}

// LocalThenReduce is the even-distribution baseline of BinaryTreeSumTime:
// each processor chains through its local slice (one cycle per addition),
// then the partials fold up a binomial tree.
func LocalThenReduce(p *logp.Proc, root, tag int, local []float64) (float64, bool) {
	sum := 0.0
	for _, v := range local {
		sum += v
	}
	if n := int64(len(local)) - 1; n > 0 {
		p.Compute(n)
	}
	v, ok := BinomialReduce(p, root, tag, sum, func(a, b any) any {
		return a.(float64) + b.(float64)
	})
	return v.(float64), ok
}
