package collective

import (
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/prof"
)

func checkStream(t *testing.T, name string, got [][]any, P, m int) {
	t.Helper()
	for i := 0; i < P; i++ {
		if len(got[i]) != m {
			t.Fatalf("%s: proc %d got %d values, want %d", name, i, len(got[i]), m)
		}
		for v := 0; v < m; v++ {
			if got[i][v] != v*v {
				t.Errorf("%s: proc %d value %d = %v, want %d", name, i, v, got[i][v], v*v)
			}
		}
	}
}

func TestPipelinedChainBroadcast(t *testing.T) {
	params := core.Params{P: 6, L: 6, O: 2, G: 4}
	const m = 10
	for _, root := range []int{0, 3} {
		got := make([][]any, 6)
		mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
			got[p.ID()] = PipelinedChainBroadcast(p, root, 30, m, func(i int) any { return i * i })
		})
		checkStream(t, "chain", got, 6, m)
	}
}

func TestPipelinedBinomialBroadcast(t *testing.T) {
	for _, P := range []int{2, 5, 8, 11} {
		params := core.Params{P: P, L: 6, O: 2, G: 4}
		const m = 7
		got := make([][]any, P)
		mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
			got[p.ID()] = PipelinedBinomialBroadcast(p, 1%P, 30, m, func(i int) any { return i * i })
		})
		checkStream(t, "binomial", got, P, m)
	}
}

// TestPipelineLatencyFractionShrinks quantifies the Section 3.1 claim that
// pipelined streams amortize latency: profiling the chain broadcast and
// attributing the critical path to the model parameters, the fraction of
// the makespan charged to L falls monotonically as the stream grows (the
// P-1 flight hops are a fixed pipeline fill; every extra value adds only
// gap-rate cycles).
func TestPipelineLatencyFractionShrinks(t *testing.T) {
	params := core.Params{P: 4, L: 10, O: 2, G: 4}
	lfrac := func(m int) float64 {
		rec := prof.NewRecorder()
		mustRun(t, logp.Config{Params: params, Profiler: rec}, func(p *logp.Proc) {
			PipelinedChainBroadcast(p, 0, 30, m, func(i int) any { return nil })
		})
		run, err := rec.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		cp := run.CriticalPath()
		if err := cp.Contiguous(); err != nil {
			t.Fatalf("m=%d: critical path does not tile the makespan: %v", m, err)
		}
		a := cp.Attribution()
		return a.Fraction(a.Latency)
	}
	ms := []int{1, 4, 16, 64}
	fracs := make([]float64, len(ms))
	for i, m := range ms {
		fracs[i] = lfrac(m)
	}
	for i := 1; i < len(ms); i++ {
		if fracs[i] >= fracs[i-1] {
			t.Errorf("L-fraction did not shrink: m=%d gives %.2f, m=%d gives %.2f",
				ms[i-1], fracs[i-1], ms[i], fracs[i])
		}
	}
	// With one value the three flights dominate; with a long stream they are
	// a vanishing fill term.
	if fracs[0] < 0.5 {
		t.Errorf("single-value chain charges only %.2f to L, expected latency-dominated", fracs[0])
	}
	if last := fracs[len(fracs)-1]; last > 0.2 {
		t.Errorf("long stream still charges %.2f to L, expected gap-dominated", last)
	}
}

// TestChainBeatsBinomialForLongStreams: for a long stream the chain's
// per-value cost at the root is one send (max(g,o)) versus ceil(log2 P)
// sends for the binomial tree.
func TestChainBeatsBinomialForLongStreams(t *testing.T) {
	params := core.Params{P: 8, L: 6, O: 2, G: 4}
	const m = 200
	chain := mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		PipelinedChainBroadcast(p, 0, 30, m, func(i int) any { return i })
	})
	binom := mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		PipelinedBinomialBroadcast(p, 0, 30, m, func(i int) any { return i })
	})
	if chain.Time >= binom.Time {
		t.Errorf("chain %d not faster than binomial %d for m=%d", chain.Time, binom.Time, m)
	}
	// And the reverse for a single value: the chain pays P-1 hops.
	chain1 := mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		PipelinedChainBroadcast(p, 0, 30, 1, func(i int) any { return i })
	})
	binom1 := mustRun(t, logp.Config{Params: params}, func(p *logp.Proc) {
		PipelinedBinomialBroadcast(p, 0, 30, 1, func(i int) any { return i })
	})
	if binom1.Time >= chain1.Time {
		t.Errorf("binomial %d not faster than chain %d for m=1", binom1.Time, chain1.Time)
	}
}
