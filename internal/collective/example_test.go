package collective_test

import (
	"fmt"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

// Executing the optimal broadcast schedule reproduces its analytic time.
func ExampleBroadcast() {
	params := core.Params{P: 8, L: 6, O: 2, G: 4}
	s, err := core.OptimalBroadcast(params, 0)
	if err != nil {
		panic(err)
	}
	res, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
		collective.Broadcast(p, s, 1, 42)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("analytic:", s.Finish, "simulated:", res.Time)
	// Output:
	// analytic: 24 simulated: 24
}

// A reduction to processor 0 over a binomial tree.
func ExampleBinomialReduce() {
	params := core.Params{P: 8, L: 6, O: 2, G: 4}
	_, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
		v, ok := collective.BinomialReduce(p, 0, 1, p.ID(), func(a, b any) any {
			return a.(int) + b.(int)
		})
		if ok {
			fmt.Println("sum of ids:", v)
		}
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// sum of ids: 28
}

// An inclusive prefix scan (the scan-model primitive, charged honestly).
func ExampleScan() {
	params := core.Params{P: 4, L: 6, O: 2, G: 4}
	out := make([]int, 4)
	_, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
		v := collective.Scan(p, 10, 1, func(a, b any) any { return a.(int) + b.(int) })
		out[p.ID()] = v.(int)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output:
	// [1 2 3 4]
}
