package collective

import "github.com/logp-model/logp/internal/logp"

// Barrier is a message-based dissemination barrier: ceil(log2 P) rounds in
// which processor i signals (i + 2^k) mod P and waits for the signal from
// (i - 2^k) mod P. The paper notes (Section 5.5) that barrier hardware "is
// not yet sufficiently available" and synchronization can always be done
// with messages, at higher cost; Proc.Barrier is the hardware alternative.
//
// Distinct rounds use tag+round so delayed messages from earlier rounds are
// never confused with the current one.
func Barrier(p *logp.Proc, tag int) {
	P := p.P()
	if P == 1 {
		return
	}
	me := p.ID()
	for k, round := 1, 0; k < P; k, round = k<<1, round+1 {
		p.Send((me+k)%P, tag+round, nil)
		p.RecvTag(tag + round)
	}
}

// BarrierRounds reports the number of message rounds Barrier uses for P
// processors.
func BarrierRounds(P int) int {
	rounds := 0
	for k := 1; k < P; k <<= 1 {
		rounds++
	}
	return rounds
}

// Scan computes an inclusive prefix reduction (Hillis-Steele dissemination):
// after ceil(log2 P) rounds, processor i holds op(v_0, ..., v_i). Each
// combining step charges one cycle. The scan-model of Section 6.2 treats
// this as a unit-time primitive; under LogP it costs ceil(log2 P) message
// rounds.
func Scan(p *logp.Proc, tag int, value any, op func(a, b any) any) any {
	P := p.P()
	me := p.ID()
	acc := value
	for k, round := 1, 0; k < P; k, round = k<<1, round+1 {
		if me+k < P {
			p.Send(me+k, tag+round, acc)
		}
		if me-k >= 0 {
			m := p.RecvTag(tag + round)
			acc = op(m.Data, acc)
			p.Compute(1)
		}
	}
	return acc
}
