package collective

import (
	"fmt"

	"github.com/logp-model/logp/internal/logp"
)

// PipelinedChainBroadcast streams m values from root through a linear chain
// of processors: root -> root+1 -> ... -> root+P-1 (mod P). Each processor
// forwards every value as it arrives, so for long streams the time
// approaches m*max(g,o) plus a (P-1)*(2o+L) pipeline fill — the regime of
// Section 3.1 where "messages are sent in long streams which are pipelined
// through the network, so that message transmission time is dominated by the
// inter-message gaps, and the latency may be disregarded".
//
// Every processor calls it; values(i) supplies the i-th value at the root;
// the function returns all m values everywhere.
func PipelinedChainBroadcast(p *logp.Proc, root, tag, m int, values func(i int) any) []any {
	P := p.P()
	pos := (p.ID() - root + P) % P // position in the chain
	next := -1
	if pos < P-1 {
		next = (p.ID() + 1) % P
	}
	out := make([]any, m)
	for i := 0; i < m; i++ {
		var v any
		if pos == 0 {
			v = values(i)
		} else {
			v = p.RecvTag(tag).Data
		}
		out[i] = v
		if next >= 0 {
			p.Send(next, tag, v)
		}
	}
	return out
}

// PipelinedChainBroadcastGroup streams m values through an explicit chain of
// member processors (members[0] is the source). Only the members call it;
// values(i) supplies the i-th value at the source. Used for broadcasts
// within processor-grid rows and columns, whose members are not contiguous
// processor IDs.
func PipelinedChainBroadcastGroup(p *logp.Proc, members []int, tag, m int, values func(i int) any) []any {
	pos := -1
	for i, id := range members {
		if id == p.ID() {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic(fmt.Sprintf("collective: proc %d not in group %v", p.ID(), members))
	}
	next := -1
	if pos < len(members)-1 {
		next = members[pos+1]
	}
	out := make([]any, m)
	for i := 0; i < m; i++ {
		var v any
		if pos == 0 {
			v = values(i)
		} else {
			v = p.RecvTag(tag).Data
		}
		out[i] = v
		if next >= 0 {
			p.Send(next, tag, v)
		}
	}
	return out
}

// binomialChildren returns the binomial-tree children of the processor with
// relative rank r (root-relative), as absolute processor IDs.
func binomialChildren(r, root, P int) []int {
	// A node's children sit below the bit it joined on (or below the top
	// bit for the root).
	joinMask := 1
	for joinMask < P && r&joinMask == 0 {
		joinMask <<= 1
	}
	var children []int
	for mask := joinMask >> 1; mask > 0; mask >>= 1 {
		if dst := r + mask; dst < P {
			children = append(children, (dst+root)%P)
		}
	}
	return children
}

// PipelinedBinomialBroadcast streams m values down the binomial broadcast
// tree, forwarding each value independently. The root pays ceil(log2 P)
// sends per value, so the chain broadcast wins for long streams while this
// wins for short ones (lower pipeline-fill latency).
func PipelinedBinomialBroadcast(p *logp.Proc, root, tag, m int, values func(i int) any) []any {
	P := p.P()
	r := (p.ID() - root + P) % P
	children := binomialChildren(r, root, P)
	out := make([]any, m)
	for i := 0; i < m; i++ {
		var v any
		if r == 0 {
			v = values(i)
		} else {
			v = p.RecvTag(tag).Data
		}
		out[i] = v
		for _, c := range children {
			p.Send(c, tag, v)
		}
	}
	return out
}
