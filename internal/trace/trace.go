// Package trace records and renders per-processor activity timelines from
// simulated LogP machine runs: what each processor was doing (computing,
// paying send/receive overhead, stalled on the capacity constraint, or idle)
// during every cycle. The ASCII Gantt rendering reproduces the right-hand
// sides of Figures 3 and 4 of the paper.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies what a processor is doing during a segment.
type Kind uint8

const (
	// Compute is local work (unit-time operations).
	Compute Kind = iota
	// SendOverhead is the o cycles a processor spends transmitting.
	SendOverhead
	// RecvOverhead is the o cycles a processor spends receiving.
	RecvOverhead
	// Stall is time blocked by the network capacity constraint ceil(L/g).
	Stall
	// Idle is time waiting: for a message to arrive, for the gap, or for
	// the program to end.
	Idle
	// numKinds counts the kinds machine trace logs contain; Gantt and
	// Utilization render exactly these.
	numKinds

	// The remaining kinds type the finer-grained causal spans produced by
	// the profiler (internal/prof). They never appear in machine trace
	// logs, so the renderers above ignore them.

	// Flight is a message's L-cycle network flight (not attached to any
	// processor).
	Flight
	// GapWait is idle time waiting out the gap g before the processor's
	// next send or reception slot (including a DMA coprocessor streaming a
	// bulk train at the gap rate).
	GapWait
	// MsgWait is idle time waiting for a message to arrive.
	MsgWait
	// BarrierWait is time blocked at the hardware barrier.
	BarrierWait
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case SendOverhead:
		return "send-o"
	case RecvOverhead:
		return "recv-o"
	case Stall:
		return "stall"
	case Idle:
		return "idle"
	case Flight:
		return "flight"
	case GapWait:
		return "gap"
	case MsgWait:
		return "msg-wait"
	case BarrierWait:
		return "barrier"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Glyph is the single character representing the kind in Gantt rendering
// and other compact timelines.
func (k Kind) Glyph() byte {
	switch k {
	case Compute:
		return '#'
	case SendOverhead:
		return 'S'
	case RecvOverhead:
		return 'R'
	case Stall:
		return '!'
	case Idle:
		return '.'
	case Flight:
		return '~'
	case GapWait:
		return 'g'
	case MsgWait:
		return 'm'
	case BarrierWait:
		return 'b'
	}
	return '?'
}

// Segment is one contiguous activity interval [Start, End) on a processor.
type Segment struct {
	Proc  int
	Kind  Kind
	Start int64
	End   int64
}

// Log accumulates segments from a run. The zero value is ready to use.
type Log struct {
	Segments []Segment
}

// Add appends a segment; zero-length segments are dropped.
func (l *Log) Add(proc int, kind Kind, start, end int64) {
	if end <= start {
		return
	}
	// Coalesce with the previous segment of the same processor and kind.
	if n := len(l.Segments); n > 0 {
		last := &l.Segments[n-1]
		if last.Proc == proc && last.Kind == kind && last.End == start {
			last.End = end
			return
		}
	}
	l.Segments = append(l.Segments, Segment{Proc: proc, Kind: kind, Start: start, End: end})
}

// ByProc returns the segments of one processor in start order.
func (l *Log) ByProc(proc int) []Segment {
	var out []Segment
	for _, s := range l.Segments {
		if s.Proc == proc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Busy sums the time processor proc spends in the given kind.
func (l *Log) Busy(proc int, kind Kind) int64 {
	var total int64
	for _, s := range l.Segments {
		if s.Proc == proc && s.Kind == kind {
			total += s.End - s.Start
		}
	}
	return total
}

// End returns the latest segment end across all processors.
func (l *Log) End() int64 {
	var end int64
	for _, s := range l.Segments {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// Validate checks that no processor has overlapping segments: a processor
// does one thing at a time.
func (l *Log) Validate(procs int) error {
	for p := 0; p < procs; p++ {
		segs := l.ByProc(p)
		for i := 1; i < len(segs); i++ {
			if segs[i].Start < segs[i-1].End {
				return fmt.Errorf("trace: proc %d segments overlap: %v then %v", p, segs[i-1], segs[i])
			}
		}
	}
	return nil
}

// Utilization summarizes each processor's time split across activity kinds
// over the horizon [0, End()): fractions indexed by Kind, with unaccounted
// time counted as Idle.
func (l *Log) Utilization(procs int) [][]float64 {
	end := l.End()
	out := make([][]float64, procs)
	for p := 0; p < procs; p++ {
		out[p] = make([]float64, numKinds)
		if end == 0 {
			out[p][Idle] = 1
			continue
		}
		var accounted int64
		for _, s := range l.Segments {
			if s.Proc != p || s.Kind >= numKinds {
				continue
			}
			out[p][s.Kind] += float64(s.End-s.Start) / float64(end)
			if s.Kind != Idle {
				accounted += s.End - s.Start
			}
		}
		// Time not covered by any non-idle segment is idle (a processor
		// that finished early, or waits the log did not record).
		out[p][Idle] = 1 - float64(accounted)/float64(end)
	}
	return out
}

// Gantt renders an ASCII timeline, one row per processor, one column per
// timeUnit cycles; the majority activity in each bucket picks the glyph.
// This is the Figure 3 / Figure 4 style view:
//
//	P0 |SSS#...
//	P1 |....RR#
func (l *Log) Gantt(procs int, timeUnit int64) string {
	if timeUnit < 1 {
		timeUnit = 1
	}
	end := l.End()
	cols := int((end + timeUnit - 1) / timeUnit)
	var b strings.Builder
	// Header ruler every 10 columns.
	b.WriteString("      ")
	for c := 0; c < cols; c++ {
		if c%10 == 0 {
			b.WriteString(fmt.Sprintf("%-10d", int64(c)*timeUnit))
		}
	}
	b.WriteByte('\n')
	for p := 0; p < procs; p++ {
		row := make([]byte, cols)
		fill := make([][numKinds]int64, cols)
		for _, s := range l.ByProc(p) {
			if s.Kind >= numKinds {
				continue
			}
			for t := s.Start; t < s.End; t++ {
				c := int(t / timeUnit)
				if c < cols {
					fill[c][s.Kind] += 1
				}
			}
		}
		for c := 0; c < cols; c++ {
			bestK, bestV := Idle, int64(0)
			for k := Kind(0); k < numKinds; k++ {
				if fill[c][k] > bestV {
					bestK, bestV = k, fill[c][k]
				}
			}
			if bestV == 0 {
				row[c] = ' '
			} else {
				row[c] = bestK.Glyph()
			}
		}
		fmt.Fprintf(&b, "P%-4d |%s|\n", p, string(row))
	}
	b.WriteString("       # compute  S send-overhead  R recv-overhead  ! stall  . idle\n")
	return b.String()
}
