package trace

import (
	"fmt"
	"strings"
	"testing"
)

func TestAddCoalescesAdjacent(t *testing.T) {
	var l Log
	l.Add(0, Compute, 0, 5)
	l.Add(0, Compute, 5, 9)
	l.Add(0, SendOverhead, 9, 11)
	l.Add(0, Compute, 11, 12) // gap in kind: separate
	if len(l.Segments) != 3 {
		t.Fatalf("%d segments, want 3 after coalescing", len(l.Segments))
	}
	if l.Segments[0].End != 9 {
		t.Errorf("coalesced end %d, want 9", l.Segments[0].End)
	}
	l.Add(0, Idle, 12, 12) // zero-length dropped
	if len(l.Segments) != 3 {
		t.Error("zero-length segment not dropped")
	}
}

func TestBusyAndEnd(t *testing.T) {
	var l Log
	l.Add(0, Compute, 0, 5)
	l.Add(1, Compute, 2, 4)
	l.Add(0, Stall, 5, 8)
	if got := l.Busy(0, Compute); got != 5 {
		t.Errorf("busy compute = %d", got)
	}
	if got := l.Busy(0, Stall); got != 3 {
		t.Errorf("busy stall = %d", got)
	}
	if l.End() != 8 {
		t.Errorf("end = %d", l.End())
	}
}

func TestValidateDetectsOverlap(t *testing.T) {
	var l Log
	l.Add(0, Compute, 0, 5)
	l.Add(0, RecvOverhead, 3, 6)
	if err := l.Validate(1); err == nil {
		t.Error("overlap not detected")
	}
	var ok Log
	ok.Add(0, Compute, 0, 5)
	ok.Add(0, RecvOverhead, 5, 6)
	if err := ok.Validate(1); err != nil {
		t.Error(err)
	}
}

func TestGanttRendersRows(t *testing.T) {
	var l Log
	l.Add(0, SendOverhead, 0, 2)
	l.Add(0, Idle, 2, 4)
	l.Add(1, RecvOverhead, 4, 6)
	l.Add(1, Compute, 6, 10)
	out := l.Gantt(2, 1)
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P1") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var p0, p1 string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "P0") {
			p0 = ln
		}
		if strings.HasPrefix(ln, "P1") {
			p1 = ln
		}
	}
	if !strings.Contains(p0, "SS..") {
		t.Errorf("P0 row %q", p0)
	}
	if !strings.Contains(p1, "RR####") {
		t.Errorf("P1 row %q", p1)
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{Compute: "compute", SendOverhead: "send-o", RecvOverhead: "recv-o", Stall: "stall", Idle: "idle"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestGanttBucketsMajority(t *testing.T) {
	var l Log
	l.Add(0, Compute, 0, 8)
	l.Add(0, Idle, 8, 10)
	out := l.Gantt(1, 10) // one bucket: compute dominates
	if !strings.Contains(out, "|#|") {
		t.Errorf("bucket glyph wrong:\n%s", out)
	}
}

func TestGlyphAccessor(t *testing.T) {
	glyphs := map[Kind]byte{
		Compute: '#', SendOverhead: 'S', RecvOverhead: 'R', Stall: '!', Idle: '.',
		Flight: '~', GapWait: 'g', MsgWait: 'm', BarrierWait: 'b',
	}
	for k, want := range glyphs {
		if got := k.Glyph(); got != want {
			t.Errorf("%v glyph = %c, want %c", k, got, want)
		}
	}
	if Kind(99).Glyph() != '?' {
		t.Errorf("unknown kind glyph = %c", Kind(99).Glyph())
	}
}

// TestGanttEdgeCases drives Gantt through the boundary shapes the happy-path
// test misses: an empty log, single-cycle segments, a timeline that starts
// after cycle 0, and a segment of a profiler-only kind (which must not
// render).
func TestGanttEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		build    func(l *Log)
		procs    int
		timeUnit int64
		wantRow  map[int]string // substring expected in each processor row
		wantCols int            // expected rendered columns between the bars
	}{
		{
			name:     "empty log",
			build:    func(l *Log) {},
			procs:    2,
			timeUnit: 1,
			wantRow:  map[int]string{0: "||", 1: "||"},
			wantCols: 0,
		},
		{
			name: "single-cycle segments",
			build: func(l *Log) {
				l.Add(0, SendOverhead, 0, 1)
				l.Add(0, Compute, 1, 2)
				l.Add(0, Idle, 2, 3)
			},
			procs:    1,
			timeUnit: 1,
			wantRow:  map[int]string{0: "|S#.|"},
			wantCols: 3,
		},
		{
			name: "non-zero start leaves leading blank",
			build: func(l *Log) {
				l.Add(0, Compute, 3, 6)
			},
			procs:    1,
			timeUnit: 1,
			wantRow:  map[int]string{0: "|   ###|"},
			wantCols: 6,
		},
		{
			name: "profiler-only kinds are not rendered",
			build: func(l *Log) {
				l.Add(0, Flight, 0, 4)
				l.Add(0, Compute, 4, 6)
			},
			procs:    1,
			timeUnit: 1,
			wantRow:  map[int]string{0: "|    ##|"},
			wantCols: 6,
		},
		{
			name: "bucket rounding covers a partial trailing unit",
			build: func(l *Log) {
				l.Add(0, Compute, 0, 5)
			},
			procs:    1,
			timeUnit: 2,
			wantRow:  map[int]string{0: "|###|"},
			wantCols: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var l Log
			tc.build(&l)
			out := l.Gantt(tc.procs, tc.timeUnit)
			lines := strings.Split(out, "\n")
			rows := map[int]string{}
			for _, ln := range lines {
				var p int
				if n, _ := fmt.Sscanf(ln, "P%d", &p); n == 1 {
					rows[p] = ln
				}
			}
			if len(rows) != tc.procs {
				t.Fatalf("%d processor rows, want %d:\n%s", len(rows), tc.procs, out)
			}
			for p, want := range tc.wantRow {
				if !strings.Contains(rows[p], want) {
					t.Errorf("P%d row %q does not contain %q", p, rows[p], want)
				}
			}
			for p, row := range rows {
				open := strings.IndexByte(row, '|')
				close := strings.LastIndexByte(row, '|')
				if got := close - open - 1; got != tc.wantCols {
					t.Errorf("P%d row has %d columns, want %d: %q", p, got, tc.wantCols, row)
				}
			}
		})
	}
}

func TestGanttZeroTimeUnitClamped(t *testing.T) {
	var l Log
	l.Add(0, Compute, 0, 3)
	if out := l.Gantt(1, 0); !strings.Contains(out, "|###|") {
		t.Errorf("timeUnit 0 not clamped to 1:\n%s", out)
	}
}

func TestUtilization(t *testing.T) {
	var l Log
	l.Add(0, Compute, 0, 6)
	l.Add(0, SendOverhead, 6, 8)
	l.Add(1, Stall, 0, 5)
	u := l.Utilization(2)
	if u[0][Compute] != 0.75 || u[0][SendOverhead] != 0.25 || u[0][Idle] != 0 {
		t.Errorf("proc0 utilization %v", u[0])
	}
	if u[1][Stall] != 0.625 || u[1][Idle] != 0.375 {
		t.Errorf("proc1 utilization %v", u[1])
	}
	empty := (&Log{}).Utilization(1)
	if empty[0][Idle] != 1 {
		t.Errorf("empty log utilization %v", empty[0])
	}
}
