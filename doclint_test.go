package logp_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageComments is the repository's doc-lint gate (staticcheck's
// ST1000 rule, enforced without the external tool so `go test ./...` alone
// catches regressions): every package in the module — internal, cmd and
// examples alike — must carry a package comment on at least one of its
// non-test files. CI runs this test by name in its doc-lint step;
// staticcheck.conf enables the same rule for staticcheck runs.
func TestPackageComments(t *testing.T) {
	fset := token.NewFileSet()
	documented := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return perr
		}
		dir := filepath.Dir(path)
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented[dir] = true
		} else if _, seen := documented[dir]; !seen {
			documented[dir] = false
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(documented) == 0 {
		t.Fatal("no packages found: doc lint walked the wrong root")
	}
	for dir, ok := range documented {
		if !ok {
			t.Errorf("package in %s has no package comment on any file", dir)
		}
	}
}

// TestExportedDocComments tightens the doc-lint gate for the packages other
// code programs against (staticcheck's ST1020/ST1021/ST1022 family): every
// exported identifier — function, method, type, package-level const/var, and
// field of an exported struct — must carry a doc comment. Enforced for the
// model and service packages, whose exported surfaces are the ones README
// and DESIGN document; extend the list as further packages stabilize.
func TestExportedDocComments(t *testing.T) {
	pkgs := []string{"internal/topo", "internal/service", "internal/obs"}
	fset := token.NewFileSet()
	checked := 0
	for _, dir := range pkgs {
		paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range paths {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					// Methods on unexported types are not part of the
					// package's documented surface (they typically satisfy a
					// documented interface).
					if d.Name.IsExported() && receiverExported(d) && d.Doc == nil {
						t.Errorf("%s: exported %s %s has no doc comment", path, declKind(d), d.Name.Name)
					}
					checked++
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								if d.Doc == nil && s.Doc == nil {
									t.Errorf("%s: exported type %s has no doc comment", path, s.Name.Name)
								}
								checked++
								if st, ok := s.Type.(*ast.StructType); ok {
									for _, field := range st.Fields.List {
										for _, name := range field.Names {
											if name.IsExported() && field.Doc == nil && field.Comment == nil {
												t.Errorf("%s: exported field %s.%s has no doc comment",
													path, s.Name.Name, name.Name)
											}
										}
									}
								}
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									t.Errorf("%s: exported %s has no doc comment", path, name.Name)
								}
								checked++
							}
						}
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no exported identifiers found: doc lint walked the wrong root")
	}
}

// declKind names a FuncDecl for the error message.
func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// receiverExported reports whether d is a plain function or a method on an
// exported receiver type.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
