package logp_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageComments is the repository's doc-lint gate (staticcheck's
// ST1000 rule, enforced without the external tool so `go test ./...` alone
// catches regressions): every package in the module — internal, cmd and
// examples alike — must carry a package comment on at least one of its
// non-test files. CI runs this test by name in its doc-lint step;
// staticcheck.conf enables the same rule for staticcheck runs.
func TestPackageComments(t *testing.T) {
	fset := token.NewFileSet()
	documented := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return perr
		}
		dir := filepath.Dir(path)
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented[dir] = true
		} else if _, seen := documented[dir]; !seen {
			documented[dir] = false
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(documented) == 0 {
		t.Fatal("no packages found: doc lint walked the wrong root")
	}
	for dir, ok := range documented {
		if !ok {
			t.Errorf("package in %s has no package comment on any file", dir)
		}
	}
}
