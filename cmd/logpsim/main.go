// Command logpsim runs one of the built-in parallel algorithms on a
// configurable simulated LogP machine and reports the time, efficiency and
// (optionally) a per-processor activity Gantt.
//
// Examples:
//
//	logpsim -algo broadcast -P 8 -L 6 -o 2 -g 4 -trace
//	logpsim -algo broadcast -prof bcast.trace.json   # critical path + Chrome trace
//	logpsim -algo fft -P 32 -n 16384
//	logpsim -algo sum -P 8 -L 5 -o 2 -g 4 -n 79
//	logpsim -algo sort -P 8 -n 4096
//	logpsim -algo lu -P 16 -n 64 -layout scattered
//	logpsim -algo cc -P 8 -n 512
//	logpsim -algo rbcast -drop 0.05 -faultseed 7     # reliable broadcast on a lossy network
//	logpsim -algo broadcast -fail 3@10               # fail-stop proc 3 at cycle 10
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/logp-model/logp/internal/algo/cc"
	"github.com/logp-model/logp/internal/algo/fft"
	"github.com/logp-model/logp/internal/algo/lu"
	"github.com/logp-model/logp/internal/algo/matmul"
	parsort "github.com/logp-model/logp/internal/algo/sort"
	"github.com/logp-model/logp/internal/algo/stencil"
	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/prof"
	"github.com/logp-model/logp/internal/progs"
	"github.com/logp-model/logp/internal/reliable"
	"github.com/logp-model/logp/internal/service"
	"github.com/logp-model/logp/internal/topo"
)

func main() {
	var (
		algo     = flag.String("algo", "broadcast", "broadcast | rbcast | sum | fft | sort | lu | cc | matmul | stencil")
		p        = flag.Int("P", 8, "processors")
		l        = flag.Int64("L", 6, "latency upper bound (cycles)")
		o        = flag.Int64("o", 2, "send/receive overhead (cycles)")
		g        = flag.Int64("g", 4, "gap between messages (cycles)")
		n        = flag.Int("n", 0, "problem size (0 = a sensible default)")
		layout   = flag.String("layout", "scattered", "lu layout: column | blocked | scattered")
		sortAlgo = flag.String("sort", "splitter", "sort algorithm: splitter | bitonic | column")
		traceIt  = flag.Bool("trace", false, "print the activity Gantt (small runs only)")
		profOut  = flag.String("prof", "", "profile the run: print the critical-path attribution and write Chrome trace_event JSON to this file (view at chrome://tracing)")
		seed     = flag.Int64("seed", 1, "random seed")
		drop     = flag.Float64("drop", 0, "fault injection: per-message drop probability on every link")
		dup      = flag.Float64("dup", 0, "fault injection: per-message duplication probability on every link")
		jitter   = flag.Int64("jitter", 0, "fault injection: max extra latency cycles per message (uniform)")
		failAt   = flag.String("fail", "", "fault injection: comma-separated fail-stop list, proc@cycle (e.g. 2@100,5@0)")
		fseed    = flag.Int64("faultseed", 1, "seed for the fault plan's random draws")
		metOut   = flag.String("metrics", "", "write run metrics (of the last machine run) to this file, \"-\" = stdout")
		metFmt   = flag.String("metrics-format", "prom", "metrics output format: prom | json | csv")
		metEvery = flag.Int64("metrics-every", 0, "metrics sampling interval in simulated cycles (0 = default)")
		engine   = flag.String("engine", "", "execution engine for program-form algorithms (broadcast, sum): goroutine | flat (default $LOGP_ENGINE, else goroutine)")
		shards   = flag.Int("shards", 0, "flat engine: event-kernel shards, >1 runs the windowed parallel core, with or without capacity (default $LOGP_SHARDS, else 1)")
		shStats  = flag.Bool("shardstats", false, "flat engine: record and print the per-shard flight-recorder table (windows, events, wheel/heap split, barrier wait) after the run")
		nocap    = flag.Bool("nocap", false, "disable the capacity limit of ceil(L/g) in-flight messages per processor")
		tier     = flag.String("tier", "", "hierarchical topology: node=<ppn>:<L>,<o>,<g>[;rack=<npr>:<L>,<o>,<g>]; -L/-o/-g stay the top (cluster) tier")
		jsonOut  = flag.Bool("json", false, "print the run as a canonical JSON response (the exact bytes logpsimd serves for the same spec) instead of the human summary")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "logpsim: unexpected argument %q (all options are flags)\n\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *engine != "" {
		if _, err := logp.EngineByName(*engine); err != nil {
			usageError(err)
		}
		logp.SetDefaultEngineName(*engine)
	}
	engName := logp.DefaultEngineName()
	if *shards > 1 && engName == "goroutine" {
		usageError(fmt.Errorf("-shards applies to the flat engine only (use -engine flat)"))
	}
	if *shStats {
		if engName == "goroutine" && *shards <= 1 {
			usageError(fmt.Errorf("-shardstats applies to the flat engine only (use -engine flat or -shards)"))
		}
		if *jsonOut {
			usageError(fmt.Errorf("-json excludes -shardstats: the wall-clock table is not part of the canonical response"))
		}
	}

	params := core.Params{P: *p, L: *l, O: *o, G: *g}
	if err := params.Validate(); err != nil {
		fatal(err)
	}
	cfg := logp.Config{Params: params, CollectTrace: *traceIt, Seed: *seed, DisableCapacity: *nocap}
	var tierSpec *topo.Spec
	if *tier != "" {
		ts, err := topo.ParseSpec(*tier)
		if err != nil {
			usageError(err)
		}
		model, err := ts.Build(params)
		if err != nil {
			usageError(err)
		}
		tierSpec = ts
		cfg.Topology = model
	}
	faults, err := faultPlan(*drop, *dup, *jitter, *failAt, *fseed)
	if err != nil {
		usageError(err)
	}
	if faults != nil {
		if err := faults.Validate(params.P); err != nil {
			usageError(err)
		}
	}
	cfg.Faults = faults
	if *jsonOut {
		if *traceIt || *profOut != "" {
			usageError(fmt.Errorf("-json excludes -trace and -prof: the JSON response carries no trace"))
		}
		if *metOut == "-" {
			usageError(fmt.Errorf("-json owns stdout; metrics are embedded in the response body (use -metrics with a file path for a separate export)"))
		}
		switch *algo {
		case "broadcast", "sum":
			// Program-form algorithms route through the same spec→response
			// path the daemon runs, so the bytes match logpsimd's body for
			// the same spec — and its spec_hash addresses the daemon's cache.
			if err := runServiceJSON(*algo, params, *n, engName, *shards, *nocap, *seed,
				tierSpec, faults, *metOut, *metFmt, *metEvery); err != nil {
				fatal(err)
			}
			return
		}
	}
	var rec *prof.Recorder
	if *profOut != "" {
		rec = prof.NewRecorder()
		cfg.Profiler = rec
	}
	var reg *metrics.Registry
	if *metOut != "" {
		switch *metFmt {
		case "prom", "json", "csv":
		default:
			usageError(fmt.Errorf("unknown metrics format %q (want prom, json or csv)", *metFmt))
		}
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
		cfg.MetricsEvery = *metEvery
	}

	var res logp.Result
	var summary string
	var shardTab []flat.ShardStat
	switch *algo {
	case "broadcast", "sum":
		// Program-form algorithms: run on whichever engine is selected. The
		// flat engine is pinned cycle-identical to the goroutine machine by
		// the cross-engine tests, so the output does not depend on -engine.
	default:
		if engName != "goroutine" {
			usageError(fmt.Errorf("algorithm %q has an imperative (blocking) body and runs only on the goroutine engine; program-form algorithms: broadcast, sum", *algo))
		}
	}
	switch *algo {
	case "broadcast":
		var s *core.BroadcastSchedule
		s, err = core.OptimalBroadcast(params, 0)
		if err != nil {
			fatal(err)
		}
		res, shardTab, err = runProgram(cfg, progs.NewBroadcast(s, 1, "datum"), engName, *shards, *shStats)
		summary = fmt.Sprintf("optimal broadcast: predicted %d, binomial %d, linear %d",
			s.Finish, core.BinomialBroadcastTime(params), core.LinearBroadcastTime(params))
	case "rbcast":
		done := make([]int64, params.P)
		got := make([]any, params.P)
		retr := make([]int, params.P)
		res, err = logp.Run(cfg, func(pr *logp.Proc) {
			e := reliable.New(pr, reliable.Config{})
			v, _ := reliable.Broadcast(e, 0, 1, "datum", pr.Now()+10_000_000)
			done[pr.ID()] = pr.Now()
			got[pr.ID()] = v
			e.Drain(pr.Now() + 4000)
			retr[pr.ID()] = e.Retransmits()
		})
		delivered, retrans := 0, 0
		var last int64
		for i := 0; i < params.P; i++ {
			if got[i] == "datum" {
				delivered++
			}
			if done[i] > last {
				last = done[i]
			}
			retrans += retr[i]
		}
		summary = fmt.Sprintf("reliable broadcast: delivered to %d/%d processors by cycle %d, %d retransmissions",
			delivered, params.P, last, retrans)
	case "sum":
		size := int64(defaultN(*n, 1000))
		deadline := core.MinSumTime(params, size)
		var s *core.SumSchedule
		s, err = core.OptimalSummation(params, deadline)
		if err != nil {
			fatal(err)
		}
		values := make([]float64, s.TotalValues)
		for i := range values {
			values[i] = 1
		}
		var dist [][]float64
		dist, err = collective.DistributeInputs(s, values)
		if err != nil {
			fatal(err)
		}
		res, shardTab, err = runProgram(cfg, progs.NewSum(s, 1, dist), engName, *shards, *shStats)
		summary = fmt.Sprintf("optimal summation of %d values: predicted %d (binary tree %d)",
			s.TotalValues, deadline, core.BinaryTreeSumTime(params, s.TotalValues))
	case "fft":
		size := defaultN(*n, 4096)
		in := randomComplex(size, *seed)
		fcfg := fft.Config{N: size, Machine: cfg, Cost: fft.CM5Cost(), Schedule: fft.StaggeredSchedule}
		var ph fft.Phases
		_, ph, res, err = fft.Run(fcfg, in)
		summary = fmt.Sprintf("hybrid FFT of %d points: cyclic %d + remap %d + blocked %d cycles",
			size, ph.Cyclic, ph.Remap, ph.Blocked)
	case "sort":
		size := defaultN(*n, 4096)
		keys := make([]float64, size)
		rng := rand.New(rand.NewSource(*seed))
		for i := range keys {
			keys[i] = rng.NormFloat64()
		}
		var sa parsort.Algorithm
		switch *sortAlgo {
		case "splitter":
			sa = parsort.Splitter
		case "bitonic":
			sa = parsort.Bitonic
		case "column":
			sa = parsort.Column
		default:
			usageError(fmt.Errorf("unknown sort algorithm %q (want splitter, bitonic or column)", *sortAlgo))
		}
		var st parsort.Stats
		_, st, err = parsort.Run(parsort.Config{Machine: cfg, Algo: sa}, keys)
		res.Time = st.Time
		res.Messages = st.Messages
		summary = fmt.Sprintf("%v sort of %d keys: %d messages, largest chunk %d", sa, size, st.Messages, st.MaxChunk)
	case "lu":
		size := defaultN(*n, 64)
		var lay lu.Layout
		switch *layout {
		case "column":
			lay = lu.ColumnCyclic
		case "blocked":
			lay = lu.BlockedGrid
		case "scattered":
			lay = lu.ScatteredGrid
		default:
			usageError(fmt.Errorf("unknown layout %q (want column, blocked or scattered)", *layout))
		}
		a := lu.Random(size, *seed)
		var perm []int
		var f *lu.Dense
		f, perm, res, err = lu.Run(lu.Config{Machine: cfg, Layout: lay}, a)
		if err == nil {
			summary = fmt.Sprintf("LU %dx%d (%v): residual %.2e", size, size, lay, lu.ResidualPALU(a, f, perm))
		}
	case "matmul":
		size := defaultN(*n, 32)
		a := lu.Random(size, *seed)
		bm := lu.Random(size, *seed+1)
		var got *lu.Dense
		got, res, err = matmul.Run(matmul.Config{Machine: cfg, Algo: matmul.SUMMA}, a, bm)
		if err == nil {
			summary = fmt.Sprintf("SUMMA matmul %dx%d: max error %.2e vs sequential", size, size, got.MaxAbsDiff(a.Mul(bm)))
		}
	case "stencil":
		size := defaultN(*n, 32)
		rng := rand.New(rand.NewSource(*seed))
		grid := make([][]float64, size)
		for i := range grid {
			grid[i] = make([]float64, size)
			for j := range grid[i] {
				grid[i][j] = rng.Float64()
			}
		}
		var st stencil.Stats
		_, st, err = stencil.Run(stencil.Config{Machine: cfg, N: size, Iterations: 8}, grid)
		res.Time = st.Time
		res.Messages = st.Messages
		if err == nil {
			summary = fmt.Sprintf("jacobi %dx%d, 8 iterations: %d halo messages, comm share %.0f%%",
				size, size, st.Messages, st.CommFraction*100)
		}
	case "cc":
		size := defaultN(*n, 512)
		gph := cc.RandomGraph(size, size*8, *seed)
		var st cc.Stats
		var labels []int
		labels, st, err = cc.Run(cc.Config{Machine: cfg, Mode: cc.CombiningMode}, gph)
		res.Time = st.Time
		res.Messages = st.Messages
		if err == nil {
			summary = fmt.Sprintf("connected components of G(%d,%d): %d components in %d rounds",
				size, size*8, cc.CountComponents(labels), st.Rounds)
		}
	default:
		usageError(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		if err := emitCLIResponse(*algo, params, *n, engName, *nocap, *seed, tierSpec, res, reg, *metOut, *metFmt); err != nil {
			fatal(err)
		}
		return
	}

	if *nocap {
		fmt.Printf("machine: %v  (capacity limit off)\n", params)
	} else {
		fmt.Printf("machine: %v  (capacity %d msgs in transit)\n", params, params.Capacity())
	}
	if tierSpec != nil {
		fmt.Printf("topology: %s  (base L,o,g = cluster tier)\n", tierSpec)
	}
	fmt.Println(summary)
	fmt.Printf("simulated time: %d cycles, %d messages\n", res.Time, res.Messages)
	if cfg.Faults != nil {
		fmt.Printf("faults: %d dropped, %d duplicated", res.Dropped, res.Duplicated)
		if len(res.Failed) > 0 {
			fmt.Printf(", fail-stopped procs %v", res.Failed)
		}
		fmt.Println()
	}
	if len(res.Procs) > 0 {
		fmt.Printf("efficiency: %.1f%% of processor-cycles computing, %d cycles stalled\n",
			res.BusyFraction()*100, res.TotalStall())
	}
	if *shStats && shardTab != nil {
		printShardStats(os.Stdout, shardTab)
	}
	if *traceIt && res.Trace != nil {
		unit := res.Time / 120
		if unit < 1 {
			unit = 1
		}
		fmt.Println()
		fmt.Print(res.Trace.Gantt(params.P, unit))
		printUtilization(res, params.P)
	}
	if rec != nil {
		if err := writeProfile(rec, *profOut); err != nil {
			fatal(err)
		}
	}
	if reg != nil {
		if err := writeMetrics(reg, *metOut, *metFmt); err != nil {
			fatal(err)
		}
	}
}

// runProgram executes a program-form algorithm on the selected engine. An
// explicit -shards count or -shardstats builds the flat machine directly
// (with the flight recorder wired in for -shardstats); otherwise the
// registered engine (which consults LOGP_SHARDS itself) runs it. The shard
// table is nil unless recording was requested.
func runProgram(cfg logp.Config, prog logp.Program, engName string, shards int, record bool) (logp.Result, []flat.ShardStat, error) {
	if shards > 1 || record {
		if shards < 1 {
			shards = 1
		}
		m, err := flat.New(cfg, prog, shards)
		if err != nil {
			return logp.Result{}, nil, err
		}
		if record {
			m.EnableFlightRecorder()
		}
		res, err := m.Run()
		return res, m.ShardStats(), err
	}
	e, err := logp.EngineByName(engName)
	if err != nil {
		return logp.Result{}, nil, err
	}
	res, err := e.Run(cfg, prog)
	return res, nil, err
}

// printShardStats renders the flight-recorder table of a recorded flat run:
// per-shard event traffic, the wheel/heap insertion split, barrier-merge and
// capacity-replay activity, and the busy vs barrier-wait wall-clock split.
func printShardStats(w io.Writer, stats []flat.ShardStat) {
	fmt.Fprintln(w, "\nshard  procs  windows    events     wheel      heap   merged   held  rewinds   busy(ms)  wait(ms)  wait%")
	for _, st := range stats {
		frac := 0.0
		if total := st.BusyNs + st.BarrierWaitNs; total > 0 {
			frac = float64(st.BarrierWaitNs) / float64(total) * 100
		}
		fmt.Fprintf(w, "%5d  %5d  %7d  %8d  %8d  %8d  %7d  %5d  %7d  %9.3f  %8.3f  %5.1f\n",
			st.Shard, st.Procs, st.Windows, st.Events, st.WheelEvents, st.HeapEvents,
			st.MergedIn, st.HeldReplays, st.Rewinds,
			float64(st.BusyNs)/1e6, float64(st.BarrierWaitNs)/1e6, frac)
	}
}

// runServiceJSON executes a registry program through service.Run — the exact
// spec→response path logpsimd serves — and prints the canonical body. The
// same flags therefore produce the same bytes locally and from the daemon,
// and the printed spec_hash addresses the daemon's cache directly.
func runServiceJSON(algo string, params core.Params, n int, engName string, shards int,
	nocap bool, seed int64, tierSpec *topo.Spec, faults *logp.FaultPlan, metOut, metFmt string, metEvery int64) error {
	spec := service.JobSpec{
		Program: algo,
		N:       n,
		Machine: service.MachineSpec{P: params.P, L: params.L, O: params.O, G: params.G, NoCapacity: nocap, Topology: tierSpec},
		Engine:  engName,
		Shards:  shards,
		Seed:    seed,
		Faults:  serviceFaults(faults),
	}
	if shards > 1 {
		spec.Engine = "flat"
	}
	if metOut != "" {
		spec.Metrics = &service.MetricsSpec{Include: true, Every: metEvery}
	}
	resp, err := service.Run(spec)
	if err != nil {
		return err
	}
	body, err := resp.Encode()
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(body); err != nil {
		return err
	}
	if metOut != "" && resp.Metrics != nil {
		return writeSnapshot(*resp.Metrics, metOut, metFmt)
	}
	return nil
}

// emitCLIResponse renders an imperative (CLI-only) algorithm's result in the
// service response encoding. These algorithms are not in the daemon's program
// registry, so the response carries no spec hash — it is not cache-addressable.
func emitCLIResponse(algo string, params core.Params, n int, engName string,
	nocap bool, seed int64, tierSpec *topo.Spec, res logp.Result, reg *metrics.Registry, metOut, metFmt string) error {
	resp := &service.Response{
		Spec: service.JobSpec{
			Program: algo,
			N:       n,
			Machine: service.MachineSpec{P: params.P, L: params.L, O: params.O, G: params.G, NoCapacity: nocap, Topology: tierSpec},
			Engine:  engName,
			Seed:    seed,
		},
		Result: service.ResultJSON{
			Time:             res.Time,
			Messages:         res.Messages,
			MaxInTransitFrom: res.MaxInTransitFrom,
			MaxInTransitTo:   res.MaxInTransitTo,
			Dropped:          res.Dropped,
			Duplicated:       res.Duplicated,
			Failed:           res.Failed,
			Undelivered:      res.Undelivered,
		},
	}
	if reg != nil {
		snap := reg.Snapshot()
		resp.Metrics = &snap
	}
	body, err := resp.Encode()
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(body); err != nil {
		return err
	}
	if reg != nil && metOut != "" {
		return writeSnapshot(reg.Snapshot(), metOut, metFmt)
	}
	return nil
}

// serviceFaults converts a CLI fault plan to the spec form.
func serviceFaults(plan *logp.FaultPlan) *service.FaultSpec {
	if plan == nil {
		return nil
	}
	fs := &service.FaultSpec{
		Seed: plan.Seed, Drop: plan.Default.Drop, Dup: plan.Default.Dup, Jitter: plan.Default.Jitter,
	}
	for _, f := range plan.FailStops {
		fs.Fails = append(fs.Fails, service.FailStopSpec{Proc: f.Proc, At: f.At})
	}
	return fs
}

// writeSnapshot exports an already-taken snapshot to a file.
func writeSnapshot(snap metrics.Snapshot, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return errors.Join(emitMetrics(f, snap, format), f.Close())
}

// writeMetrics exports the registry snapshot in the requested format to path
// ("-" = stdout). Multi-machine algorithms reset the registry per run, so the
// snapshot describes the last machine executed.
func writeMetrics(reg *metrics.Registry, path, format string) error {
	snap := reg.Snapshot()
	if path == "-" {
		return emitMetrics(os.Stdout, snap, format)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Close explicitly: a failed flush must not be silently discarded,
	// or a truncated metrics file would be reported as success.
	return errors.Join(emitMetrics(f, snap, format), f.Close())
}

// emitMetrics writes the snapshot in the requested format.
func emitMetrics(w io.Writer, snap metrics.Snapshot, format string) error {
	switch format {
	case "prom":
		return metrics.WritePrometheus(w, snap)
	case "json":
		return metrics.WriteJSON(w, snap)
	case "csv":
		return metrics.WriteCSV(w, snap)
	}
	return fmt.Errorf("unknown metrics format %q", format)
}

// writeProfile analyzes the recorded run (the last machine run, for
// algorithms that build several), prints the critical-path accounting and
// exports the Chrome trace.
func writeProfile(rec *prof.Recorder, path string) error {
	run, err := rec.Analyze()
	if err != nil {
		return err
	}
	cp := run.CriticalPath()
	fmt.Println()
	fmt.Print(cp)
	fmt.Println(cp.Attribution())
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := run.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("chrome trace written to %s (open chrome://tracing or https://ui.perfetto.dev and load it)\n", path)
	return nil
}

func defaultN(n, def int) int {
	if n > 0 {
		return n
	}
	return def
}

func randomComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "logpsim:", err)
	os.Exit(1)
}

// usageError reports a bad flag value with the full usage text and the
// conventional flag-error exit status 2.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "logpsim:", err)
	fmt.Fprintln(os.Stderr)
	flag.Usage()
	os.Exit(2)
}

// faultPlan assembles a logp.FaultPlan from the fault flags, or nil when no
// fault flag was set (keeping the machine on its zero-overhead path).
func faultPlan(drop, dup float64, jitter int64, failAt string, seed int64) (*logp.FaultPlan, error) {
	if drop == 0 && dup == 0 && jitter == 0 && failAt == "" {
		return nil, nil
	}
	plan := &logp.FaultPlan{
		Seed:    seed,
		Default: logp.LinkFault{Drop: drop, Dup: dup, Jitter: jitter},
	}
	if failAt != "" {
		for _, item := range strings.Split(failAt, ",") {
			procStr, atStr, ok := strings.Cut(item, "@")
			var proc int
			var at int64
			var err1, err2 error
			if ok {
				proc, err1 = strconv.Atoi(strings.TrimSpace(procStr))
				at, err2 = strconv.ParseInt(strings.TrimSpace(atStr), 10, 64)
			}
			if !ok || err1 != nil || err2 != nil {
				return nil, fmt.Errorf("-fail %q: want comma-separated proc@cycle entries", item)
			}
			plan.FailStops = append(plan.FailStops, logp.FailStop{Proc: proc, At: at})
		}
	}
	return plan, nil
}

// printUtilization renders the per-processor activity split of a traced run.
func printUtilization(res logp.Result, procs int) {
	u := res.Trace.Utilization(procs)
	fmt.Println("\nutilization (compute / send-o / recv-o / stall / idle):")
	for p := 0; p < procs; p++ {
		fmt.Printf("  P%-3d %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
			p, u[p][0]*100, u[p][1]*100, u[p][2]*100, u[p][3]*100, u[p][4]*100)
	}
}
