package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/logp-model/logp/internal/metrics"
)

// buildBinary compiles the command under test into a temp dir and returns
// the path. Exit-code assertions need the real binary: `go run` reports the
// child's failure as its own exit status 1, losing the code.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "logpsim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestMetricsFormatsSmoke runs the binary once per export format and checks
// each output parses: the Prometheus text has HELP/TYPE lines and the run's
// counters, the JSON round-trips into a metrics.Snapshot, and the CSV leads
// with its header row.
func TestMetricsFormatsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	bin := buildBinary(t)
	run := func(format string) string {
		out, err := exec.Command(bin,
			"-algo", "broadcast", "-P", "8", "-metrics", "-", "-metrics-format", format).CombinedOutput()
		if err != nil {
			t.Fatalf("logpsim -metrics-format %s: %v\n%s", format, err, out)
		}
		// The metrics block follows the human-readable run summary.
		return string(out)
	}

	prom := run("prom")
	for _, want := range []string{
		"# TYPE logp_sends_total counter",
		"# HELP logp_sim_time_cycles",
		`logp_delivered_total{proc="1"} 1`,
		"logp_flight_cycles_count 7",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom output missing %q:\n%s", want, prom)
		}
	}

	jsonOut := run("json")
	start := strings.Index(jsonOut, "{")
	if start < 0 {
		t.Fatalf("no JSON object in output:\n%s", jsonOut)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(jsonOut[start:]), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, jsonOut)
	}
	if len(snap.Families) == 0 || len(snap.Samples) == 0 {
		t.Errorf("JSON snapshot empty: %d families, %d samples", len(snap.Families), len(snap.Samples))
	}

	csvOut := run("csv")
	if !strings.Contains(csvOut, "metric,labels,value\n") {
		t.Errorf("csv output missing header:\n%s", csvOut)
	}
	if !strings.Contains(csvOut, "logp_sends_total,proc=0,") {
		t.Errorf("csv output missing counter rows:\n%s", csvOut)
	}
}

// TestBadMetricsFormatExit2 checks that an unknown format is a usage error.
func TestBadMetricsFormatExit2(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-metrics", "-", "-metrics-format", "xml").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("expected exit 2 for bad format, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "unknown metrics format") {
		t.Errorf("no format diagnostic in output:\n%s", out)
	}
}
