package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/service"
)

// buildBinary compiles the command under test into a temp dir and returns
// the path. Exit-code assertions need the real binary: `go run` reports the
// child's failure as its own exit status 1, losing the code.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "logpsim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestMetricsFormatsSmoke runs the binary once per export format and checks
// each output parses: the Prometheus text has HELP/TYPE lines and the run's
// counters, the JSON round-trips into a metrics.Snapshot, and the CSV leads
// with its header row.
func TestMetricsFormatsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	bin := buildBinary(t)
	run := func(format string) string {
		out, err := exec.Command(bin,
			"-algo", "broadcast", "-P", "8", "-metrics", "-", "-metrics-format", format).CombinedOutput()
		if err != nil {
			t.Fatalf("logpsim -metrics-format %s: %v\n%s", format, err, out)
		}
		// The metrics block follows the human-readable run summary.
		return string(out)
	}

	prom := run("prom")
	for _, want := range []string{
		"# TYPE logp_sends_total counter",
		"# HELP logp_sim_time_cycles",
		`logp_delivered_total{proc="1"} 1`,
		"logp_flight_cycles_count 7",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom output missing %q:\n%s", want, prom)
		}
	}

	jsonOut := run("json")
	start := strings.Index(jsonOut, "{")
	if start < 0 {
		t.Fatalf("no JSON object in output:\n%s", jsonOut)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(jsonOut[start:]), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, jsonOut)
	}
	if len(snap.Families) == 0 || len(snap.Samples) == 0 {
		t.Errorf("JSON snapshot empty: %d families, %d samples", len(snap.Families), len(snap.Samples))
	}

	csvOut := run("csv")
	if !strings.Contains(csvOut, "metric,labels,value\n") {
		t.Errorf("csv output missing header:\n%s", csvOut)
	}
	if !strings.Contains(csvOut, "logp_sends_total,proc=0,") {
		t.Errorf("csv output missing counter rows:\n%s", csvOut)
	}
}

// TestBadMetricsFormatExit2 checks that an unknown format is a usage error.
func TestBadMetricsFormatExit2(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-metrics", "-", "-metrics-format", "xml").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("expected exit 2 for bad format, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "unknown metrics format") {
		t.Errorf("no format diagnostic in output:\n%s", out)
	}
}

// TestJSONMatchesServiceBytes proves the -json satellite's contract: for a
// program-form algorithm, the CLI's stdout is byte-identical to what the
// daemon serves for the same spec (both run service.Run and the canonical
// encoder), and the printed spec hash is the daemon's cache key.
func TestJSONMatchesServiceBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	bin := buildBinary(t)
	got, err := exec.Command(bin, "-algo", "sum", "-P", "8", "-L", "5", "-n", "79", "-json").Output()
	if err != nil {
		t.Fatalf("logpsim -json: %v", err)
	}
	resp, err := service.Run(service.JobSpec{
		Program: "sum", N: 79,
		Machine: service.MachineSpec{P: 8, L: 5, O: 2, G: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("CLI bytes differ from the service encoding:\n--- cli ---\n%s--- service ---\n%s", got, want)
	}
	if !strings.Contains(string(got), `"spec_hash": "`+resp.SpecHash+`"`) {
		t.Error("spec hash missing from the CLI body")
	}
}

// TestJSONImperativeAlgo checks the CLI-only algorithms emit the service
// response shape with an empty (non-cacheable) spec hash.
func TestJSONImperativeAlgo(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-algo", "sort", "-P", "8", "-n", "128", "-json").Output()
	if err != nil {
		t.Fatalf("logpsim -algo sort -json: %v", err)
	}
	var resp service.Response
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatalf("output does not parse as a service response: %v\n%s", err, out)
	}
	if resp.SpecHash != "" {
		t.Errorf("imperative algorithm carries spec hash %q, want empty", resp.SpecHash)
	}
	if resp.Spec.Program != "sort" || resp.Result.Time <= 0 || resp.Result.Messages <= 0 {
		t.Errorf("unexpected response: %+v", resp)
	}

	// -json refuses the flags whose output it cannot represent.
	if out, err := exec.Command(bin, "-algo", "sort", "-json", "-trace").CombinedOutput(); err == nil {
		t.Errorf("-json -trace accepted:\n%s", out)
	}
}
