// Command calibrate measures the LogP parameters of a simulated machine the
// way one would measure real hardware, using the microbenchmarks that later
// "LogP quantified" studies ran on physical networks:
//
//   - a one-way timed send recovers o (the sender's busy time);
//   - a saturating send flood recovers the send interval max(g, o), hence g;
//   - a ping-pong round trip recovers 2(2o+L), hence L.
//
// The point of the exercise: the model's parameters are observable, so "a
// machine designer can give a concise performance summary of their machine
// against which algorithms can be evaluated." Comparing the measured column
// against the configured one also validates the simulator's cost charging.
//
// With -tier the machine is hierarchical and the same microbenchmarks run
// once per link class — processor 0 against an intra-node partner, an
// inter-node one, and (three-tier specs) an inter-rack one — recovering each
// tier's (L, o, g) separately, exactly how one would calibrate a real
// cluster: measure within a node, then across nodes.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/stats"
	"github.com/logp-model/logp/internal/topo"
)

func main() {
	var (
		p    = flag.Int("P", 8, "processors")
		l    = flag.Int64("L", 200, "true latency (cycles)")
		o    = flag.Int64("o", 66, "true overhead (cycles)")
		g    = flag.Int64("g", 132, "true gap (cycles)")
		tier = flag.String("tier", "", "hierarchical topology: node=<ppn>:<L>,<o>,<g>[;rack=<npr>:<L>,<o>,<g>]; -L/-o/-g stay the top (cluster) tier, and each tier is fitted separately")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		usageError(fmt.Errorf("unexpected argument %q (all options are flags)", flag.Arg(0)))
	}
	params := core.Params{P: *p, L: *l, O: *o, G: *g}
	if err := params.Validate(); err != nil {
		usageError(err)
	}
	if *p < 2 {
		usageError(fmt.Errorf("the microbenchmarks send between processors 0 and a partner, need -P >= 2 (got %d)", *p))
	}

	// One fit per link class: the flat machine has a single class; a tiered
	// one is measured against one partner per tier.
	type fit struct {
		name string
		peer int
		want topo.Link
	}
	cfg := logp.Config{Params: params}
	fits := []fit{{"link", 1, topo.Link{L: *l, O: *o, G: *g}}}
	if *tier != "" {
		spec, err := topo.ParseSpec(*tier)
		if err != nil {
			usageError(err)
		}
		model, err := spec.Build(params)
		if err != nil {
			usageError(err)
		}
		cfg.Topology = model
		fits = fits[:0]
		if spec.ProcsPerNode >= 2 {
			fits = append(fits, fit{"node", 1, spec.Node})
		}
		cluster := topo.Link{L: *l, O: *o, G: *g}
		if spec.Rack != nil {
			if rackSpan := spec.ProcsPerNode * spec.NodesPerRack; rackSpan < *p {
				fits = append(fits,
					fit{"rack", spec.ProcsPerNode, *spec.Rack},
					fit{"cluster", rackSpan, cluster})
			} else {
				fits = append(fits, fit{"rack", spec.ProcsPerNode, *spec.Rack})
			}
		} else if spec.ProcsPerNode < *p {
			fits = append(fits, fit{"cluster", spec.ProcsPerNode, cluster})
		}
		if len(fits) == 0 {
			usageError(fmt.Errorf("topology leaves no measurable pair for processor 0 at P=%d", *p))
		}
	}

	tb := stats.Table{Header: []string{"tier", "parameter", "configured", "measured", "method"}}
	for _, f := range fits {
		measuredO := measureOverhead(cfg, f.peer)
		interval := measureSendInterval(cfg, f.peer, measuredO)
		rtt := measurePingPong(cfg, f.peer)
		measuredL := rtt/2 - 2*measuredO
		caveat := ""
		if interval <= measuredO {
			caveat = " (o-bound: g <= o is unobservable from the flood)"
		}
		tb.Add(f.name, "o", f.want.O, measuredO, fmt.Sprintf("busy time of one send to P%d", f.peer))
		tb.Add(f.name, "g", f.want.G, fmt.Sprintf("%d%s", interval, caveat), "send flood steady-state interval")
		tb.Add(f.name, "L", f.want.L, measuredL, "ping-pong RTT/2 - 2o")
	}
	// The capacity bound stays global — ceil(L/g) of the base parameters
	// models the endpoint's buffer depth, not a link (see internal/topo).
	tb.Add("(global)", "capacity", params.Capacity(), params.Capacity(), "ceil(L/g) of the base parameters")
	fmt.Print(tb.String())
}

// measureOverhead times a single send from processor 0 to peer on an
// otherwise idle machine.
func measureOverhead(cfg logp.Config, peer int) int64 {
	var busy int64
	_, err := logp.Run(cfg, func(p *logp.Proc) {
		switch p.ID() {
		case 0:
			start := p.Now()
			p.Send(peer, 0, nil)
			busy = p.Now() - start
		case peer:
			p.Recv()
		}
	})
	must(err)
	return busy
}

// measureSendInterval floods messages from processor 0 to peer and divides
// the steady-state makespan by the message count.
func measureSendInterval(cfg logp.Config, peer int, measuredO int64) int64 {
	const m = 200
	var span int64
	_, err := logp.Run(cfg, func(p *logp.Proc) {
		switch p.ID() {
		case 0:
			start := p.Now()
			for i := 0; i < m; i++ {
				p.Send(peer, 0, nil)
			}
			span = p.Now() - start
		case peer:
			for i := 0; i < m; i++ {
				p.Recv()
			}
		}
	})
	must(err)
	// The first send pays only o; the remaining m-1 are spaced by the
	// interval.
	return (span - measuredO) / (m - 1)
}

// measurePingPong measures a many-round ping-pong between processor 0 and
// peer and returns the mean round trip.
func measurePingPong(cfg logp.Config, peer int) int64 {
	const rounds = 100
	var total int64
	_, err := logp.Run(cfg, func(p *logp.Proc) {
		switch p.ID() {
		case 0:
			start := p.Now()
			for i := 0; i < rounds; i++ {
				p.Send(peer, 0, nil)
				p.Recv()
			}
			total = p.Now() - start
		case peer:
			for i := 0; i < rounds; i++ {
				p.Recv()
				p.Send(0, 0, nil)
			}
		}
	})
	must(err)
	return total / rounds
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

// usageError reports a bad invocation with the full usage text and the
// conventional flag-error exit status 2.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	fmt.Fprintln(os.Stderr)
	flag.Usage()
	os.Exit(2)
}
