// Command calibrate measures the LogP parameters of a simulated machine the
// way one would measure real hardware, using the microbenchmarks that later
// "LogP quantified" studies ran on physical networks:
//
//   - a one-way timed send recovers o (the sender's busy time);
//   - a saturating send flood recovers the send interval max(g, o), hence g;
//   - a ping-pong round trip recovers 2(2o+L), hence L.
//
// The point of the exercise: the model's parameters are observable, so "a
// machine designer can give a concise performance summary of their machine
// against which algorithms can be evaluated." Comparing the measured column
// against the configured one also validates the simulator's cost charging.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/stats"
)

func main() {
	var (
		p = flag.Int("P", 8, "processors")
		l = flag.Int64("L", 200, "true latency (cycles)")
		o = flag.Int64("o", 66, "true overhead (cycles)")
		g = flag.Int64("g", 132, "true gap (cycles)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		usageError(fmt.Errorf("unexpected argument %q (all options are flags)", flag.Arg(0)))
	}
	params := core.Params{P: *p, L: *l, O: *o, G: *g}
	if err := params.Validate(); err != nil {
		usageError(err)
	}
	if *p < 2 {
		usageError(fmt.Errorf("the microbenchmarks send between processors 0 and 1, need -P >= 2 (got %d)", *p))
	}

	measuredO := measureOverhead(params)
	interval := measureSendInterval(params)
	rtt := measurePingPong(params)
	measuredL := rtt/2 - 2*measuredO
	measuredG := interval // = max(g, o); report g when it exceeds o
	caveat := ""
	if interval <= measuredO {
		caveat = " (o-bound: g <= o is unobservable from the flood)"
	}

	tb := stats.Table{Header: []string{"parameter", "configured", "measured", "method"}}
	tb.Add("o", *o, measuredO, "busy time of one send")
	tb.Add("g", *g, fmt.Sprintf("%d%s", measuredG, caveat), "send flood steady-state interval")
	tb.Add("L", *l, measuredL, "ping-pong RTT/2 - 2o")
	tb.Add("capacity", params.Capacity(), (measuredL+measuredG-1)/measuredG, "ceil(L/g)")
	fmt.Print(tb.String())
}

// measureOverhead times a single send on an otherwise idle processor.
func measureOverhead(params core.Params) int64 {
	var busy int64
	_, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
		switch p.ID() {
		case 0:
			start := p.Now()
			p.Send(1, 0, nil)
			busy = p.Now() - start
		case 1:
			p.Recv()
		}
	})
	must(err)
	return busy
}

// measureSendInterval floods messages from one processor and divides the
// steady-state makespan by the message count.
func measureSendInterval(params core.Params) int64 {
	const m = 200
	var span int64
	_, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
		switch p.ID() {
		case 0:
			start := p.Now()
			for i := 0; i < m; i++ {
				p.Send(1, 0, nil)
			}
			span = p.Now() - start
		case 1:
			for i := 0; i < m; i++ {
				p.Recv()
			}
		}
	})
	must(err)
	// The first send pays only o; the remaining m-1 are spaced by the
	// interval.
	return (span - params.O) / (m - 1)
}

// measurePingPong measures a many-round ping-pong and returns the mean round
// trip.
func measurePingPong(params core.Params) int64 {
	const rounds = 100
	var total int64
	_, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
		switch p.ID() {
		case 0:
			start := p.Now()
			for i := 0; i < rounds; i++ {
				p.Send(1, 0, nil)
				p.Recv()
			}
			total = p.Now() - start
		case 1:
			for i := 0; i < rounds; i++ {
				p.Recv()
				p.Send(0, 0, nil)
			}
		}
	})
	must(err)
	return total / rounds
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

// usageError reports a bad invocation with the full usage text and the
// conventional flag-error exit status 2.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	fmt.Fprintln(os.Stderr)
	flag.Usage()
	os.Exit(2)
}
