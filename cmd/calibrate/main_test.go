package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles the command under test into a temp dir and returns
// the path. Exit-code assertions need the real binary: `go run` reports the
// child's failure as its own exit status 1, losing the code.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "calibrate")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSmoke runs the binary as a subprocess on a small machine: it must exit
// 0 and print a calibration table whose measured o equals the configured o
// exactly (a single simulated send is deterministic).
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	out, err := exec.Command(buildBinary(t), "-P", "4", "-L", "20", "-o", "3", "-g", "5").CombinedOutput()
	if err != nil {
		t.Fatalf("calibrate exited with error: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"parameter", "configured", "measured", "o", "g", "L", "capacity"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// The o row: configured 3, measured 3.
	fields := tierRow(text, "link", "o")
	if fields == nil {
		t.Fatalf("no o row in output:\n%s", text)
	}
	if len(fields) < 4 || fields[2] != "3" || fields[3] != "3" {
		t.Errorf("o row %q: measured overhead should equal the configured 3", fields)
	}
}

// tierRow finds the table row for (tier, parameter) and returns its fields.
func tierRow(text, tier, param string) []string {
	for _, line := range strings.Split(text, "\n") {
		f := strings.Fields(line)
		if len(f) >= 4 && f[0] == tier && f[1] == param {
			return f
		}
	}
	return nil
}

// TestTieredFit runs the tiered calibration: each tier's microbenchmarks must
// recover that tier's configured (L, o, g) exactly.
func TestTieredFit(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	out, err := exec.Command(buildBinary(t),
		"-P", "8", "-L", "40", "-o", "4", "-g", "6",
		"-tier", "node=4:10,2,3").CombinedOutput()
	if err != nil {
		t.Fatalf("calibrate exited with error: %v\n%s", err, out)
	}
	text := string(out)
	for _, tc := range []struct {
		tier, param, want string
	}{
		{"node", "o", "2"}, {"node", "g", "3"}, {"node", "L", "10"},
		{"cluster", "o", "4"}, {"cluster", "g", "6"}, {"cluster", "L", "40"},
	} {
		f := tierRow(text, tc.tier, tc.param)
		if f == nil {
			t.Fatalf("no %s/%s row in output:\n%s", tc.tier, tc.param, text)
		}
		if f[2] != tc.want || f[3] != tc.want {
			t.Errorf("%s %s row %v: want configured=measured=%s", tc.tier, tc.param, f, tc.want)
		}
	}
}

// TestBadFlagsExit2 checks the flag-error convention: invalid parameters and
// stray positional arguments print the usage text and exit 2.
func TestBadFlagsExit2(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	bin := buildBinary(t)
	cases := [][]string{
		{"-P", "1"},               // P < 2 fails validation
		{"-g", "0"},               // gap must be positive
		{"stray-positional-arg"},  // arguments are flags only
		{"-no-such-flag", "true"}, // unknown flag (exit 2 via package flag)
	}
	for _, args := range cases {
		out, err := exec.Command(bin, args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Errorf("calibrate %v: expected a flag-error exit, got err=%v\n%s", args, err, out)
			continue
		}
		// Package flag and our usageError both exit 2.
		if ee.ExitCode() != 2 {
			t.Errorf("calibrate %v: exit code %d, want 2\n%s", args, ee.ExitCode(), out)
		}
		if !strings.Contains(string(out), "Usage") && !strings.Contains(string(out), "-P int") {
			t.Errorf("calibrate %v: no usage text in output:\n%s", args, out)
		}
	}
}
