// Command figures regenerates every table and figure of the paper's
// evaluation and prints the data plus the qualitative checks that encode
// each figure's shape.
//
// Usage:
//
//	figures              # run everything at the default scale
//	figures -id fig6     # one experiment
//	figures -scale 4     # larger problem sizes (closer to the paper's)
//	figures -par 1       # force sequential execution
//	figures -list        # list experiment ids
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/logp-model/logp/internal/experiments"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/topo"
)

func main() {
	id := flag.String("id", "", "run a single experiment by id")
	scale := flag.Int("scale", 1, "problem-size scale (1 = fast default, 4+ = paper-sized machine)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	out := flag.String("out", "", "also write each report to <dir>/<id>.txt")
	par := flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS; results are identical at any setting)")
	profDir := flag.String("prof", "", "also write Chrome trace_event JSON of the Figure 3/4 schedule runs to this directory")
	metOut := flag.String("metrics", "", "write harness telemetry (per-experiment wall time) to this file, \"-\" = stdout; also prints progress to stderr")
	metFmt := flag.String("metrics-format", "prom", "telemetry output format: prom | json | csv")
	engine := flag.String("engine", "", "default engine for program-form experiments: goroutine | flat (default $LOGP_ENGINE, else goroutine); experiments that pin both engines, like pscale, ignore it")
	shards := flag.Int("shards", 0, "flat engine: event-kernel shards for program-form experiments (default $LOGP_SHARDS, else 1)")
	tier := flag.String("tier", "", "node tier for the hiertree study: node=<ppn>:<L>,<o>,<g> (the experiment sweeps the cluster tier itself; other experiments ignore it)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "figures: unexpected argument %q (all options are flags)\n\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *engine != "" {
		if _, err := logp.EngineByName(*engine); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n\n", err)
			flag.Usage()
			os.Exit(2)
		}
		logp.SetDefaultEngineName(*engine)
	}
	if *shards > 0 {
		os.Setenv("LOGP_SHARDS", strconv.Itoa(*shards))
	}
	if *tier != "" {
		spec, err := topo.ParseSpec(*tier)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n\n", err)
			flag.Usage()
			os.Exit(2)
		}
		experiments.SetTierSpec(spec)
	}

	cat := experiments.Catalog()
	if *list {
		for _, e := range cat {
			fmt.Println(e.ID)
		}
		return
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	experiments.SetParallelism(*par)
	if *profDir != "" {
		if err := os.MkdirAll(*profDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if err := experiments.WriteProfTraces(*profDir); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}

	var obs []experiments.Observation
	var obsMu sync.Mutex
	if *metOut != "" {
		switch *metFmt {
		case "prom", "json", "csv":
		default:
			fmt.Fprintf(os.Stderr, "figures: unknown metrics format %q (want prom, json or csv)\n\n", *metFmt)
			flag.Usage()
			os.Exit(2)
		}
		// The observer runs on the harness worker goroutines as experiments
		// finish (completion order, not catalog order).
		experiments.SetObserver(func(o experiments.Observation) {
			obsMu.Lock()
			obs = append(obs, o)
			done := len(obs)
			obsMu.Unlock()
			fmt.Fprintf(os.Stderr, "figures: [%d/%d] %s done in %v\n", done, o.Total, o.ID, o.Wall.Round(time.Millisecond))
		})
	}

	var reports []experiments.Report
	if *id == "" {
		reports = experiments.RunAll(experiments.Scale(*scale))
	} else {
		found := false
		for i, e := range cat {
			if e.ID == *id {
				start := time.Now()
				reports = append(reports, e.Run(experiments.Scale(*scale)))
				found = true
				if *metOut != "" {
					obs = append(obs, experiments.Observation{ID: e.ID, Index: i, Total: 1, Wall: time.Since(start)})
				}
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q; known ids:\n", *id)
			for _, e := range cat {
				fmt.Fprintf(os.Stderr, "  %s\n", e.ID)
			}
			os.Exit(2)
		}
	}
	failures := 0
	for _, rep := range reports {
		fmt.Println(rep.String())
		if *out != "" {
			path := filepath.Join(*out, rep.ID+".txt")
			if err := os.WriteFile(path, []byte(rep.String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
		}
		failures += len(rep.Failed())
	}
	if *metOut != "" {
		if err := writeTelemetry(obs, reports, *metOut, *metFmt); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d check(s) failed\n", failures)
		os.Exit(1)
	}
}

// writeTelemetry exports the harness's own metrics — per-experiment wall
// time, counts of experiments and failed checks — as a hand-built metrics
// snapshot in the chosen format.
func writeTelemetry(obs []experiments.Observation, reports []experiments.Report, path, format string) error {
	sort.Slice(obs, func(i, j int) bool { return obs[i].Index < obs[j].Index })
	wall := metrics.Family{
		Name: "figures_experiment_wall_seconds",
		Help: "Wall-clock time each experiment generator took.",
		Kind: "gauge",
	}
	var total float64
	for _, o := range obs {
		secs := o.Wall.Seconds()
		total += secs
		wall.Points = append(wall.Points, metrics.Point{
			Labels: []metrics.Label{{Name: "id", Value: o.ID}},
			Value:  secs,
		})
	}
	failed := 0
	for _, rep := range reports {
		failed += len(rep.Failed())
	}
	snap := metrics.Snapshot{Families: []metrics.Family{
		{Name: "figures_experiments_total", Help: "Experiments executed.", Kind: "gauge",
			Points: []metrics.Point{{Value: float64(len(reports))}}},
		{Name: "figures_failed_checks_total", Help: "Qualitative checks that failed.", Kind: "gauge",
			Points: []metrics.Point{{Value: float64(failed)}}},
		{Name: "figures_wall_seconds_total", Help: "Summed generator wall time (not elapsed time: experiments run concurrently).", Kind: "gauge",
			Points: []metrics.Point{{Value: total}}},
		wall,
	}}
	if path == "-" {
		return emitTelemetry(os.Stdout, snap, format)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Close explicitly: a failed flush must not be silently discarded,
	// or a truncated metrics file would be reported as success.
	return errors.Join(emitTelemetry(f, snap, format), f.Close())
}

// emitTelemetry writes the snapshot in the requested format.
func emitTelemetry(w io.Writer, snap metrics.Snapshot, format string) error {
	switch format {
	case "prom":
		return metrics.WritePrometheus(w, snap)
	case "json":
		return metrics.WriteJSON(w, snap)
	case "csv":
		return metrics.WriteCSV(w, snap)
	}
	return fmt.Errorf("unknown metrics format %q", format)
}
