// Command figures regenerates every table and figure of the paper's
// evaluation and prints the data plus the qualitative checks that encode
// each figure's shape.
//
// Usage:
//
//	figures              # run everything at the default scale
//	figures -id fig6     # one experiment
//	figures -scale 4     # larger problem sizes (closer to the paper's)
//	figures -par 1       # force sequential execution
//	figures -list        # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/logp-model/logp/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run a single experiment by id")
	scale := flag.Int("scale", 1, "problem-size scale (1 = fast default, 4+ = paper-sized machine)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	out := flag.String("out", "", "also write each report to <dir>/<id>.txt")
	par := flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS; results are identical at any setting)")
	profDir := flag.String("prof", "", "also write Chrome trace_event JSON of the Figure 3/4 schedule runs to this directory")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "figures: unexpected argument %q (all options are flags)\n\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	cat := experiments.Catalog()
	if *list {
		for _, e := range cat {
			fmt.Println(e.ID)
		}
		return
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	experiments.SetParallelism(*par)
	if *profDir != "" {
		if err := os.MkdirAll(*profDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if err := experiments.WriteProfTraces(*profDir); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}

	var reports []experiments.Report
	if *id == "" {
		reports = experiments.RunAll(experiments.Scale(*scale))
	} else {
		found := false
		for _, e := range cat {
			if e.ID == *id {
				reports = append(reports, e.Run(experiments.Scale(*scale)))
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q; known ids:\n", *id)
			for _, e := range cat {
				fmt.Fprintf(os.Stderr, "  %s\n", e.ID)
			}
			os.Exit(2)
		}
	}
	failures := 0
	for _, rep := range reports {
		fmt.Println(rep.String())
		if *out != "" {
			path := filepath.Join(*out, rep.ID+".txt")
			if err := os.WriteFile(path, []byte(rep.String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
		}
		failures += len(rep.Failed())
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d check(s) failed\n", failures)
		os.Exit(1)
	}
}
