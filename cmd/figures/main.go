// Command figures regenerates every table and figure of the paper's
// evaluation and prints the data plus the qualitative checks that encode
// each figure's shape.
//
// Usage:
//
//	figures              # run everything at the default scale
//	figures -id fig6     # one experiment
//	figures -scale 4     # larger problem sizes (closer to the paper's)
//	figures -list        # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/logp-model/logp/internal/experiments"
)

type entry struct {
	id  string
	run func(experiments.Scale) experiments.Report
}

func catalog() []entry {
	fixed := func(f func() experiments.Report) func(experiments.Scale) experiments.Report {
		return func(experiments.Scale) experiments.Report { return f() }
	}
	return []entry{
		{"fig2", fixed(experiments.Fig2)},
		{"fig3", fixed(experiments.Fig3)},
		{"fig4", fixed(experiments.Fig4)},
		{"fig5", fixed(experiments.Fig5)},
		{"fig6", experiments.Fig6},
		{"fig7", experiments.Fig7},
		{"fig8", experiments.Fig8},
		{"table-dist", fixed(experiments.TableAvgDistance)},
		{"table1", fixed(experiments.Table1)},
		{"saturation", experiments.Saturation},
		{"lu", experiments.LULayouts},
		{"sort", experiments.SortComparison},
		{"cc", experiments.CCStudy},
		{"models", fixed(experiments.ModelComparison)},
		{"capacity", fixed(experiments.CapacityAblation)},
		{"bcast-sweep", fixed(experiments.BroadcastSweep)},
		{"multithreading", fixed(experiments.Multithreading)},
		{"longmsg", fixed(experiments.LongMessages)},
		{"surface", experiments.SurfaceToVolume},
		{"overlap", fixed(experiments.OverlapFFT)},
		{"patterns", experiments.PatternGaps},
		{"paramspace", fixed(experiments.ParameterSpace)},
		{"pram", fixed(experiments.PRAMEmulation)},
		{"robustness", fixed(experiments.Robustness)},
		{"bsp", experiments.BSPComparison},
		{"am", fixed(experiments.ActiveMessages)},
	}
}

func main() {
	id := flag.String("id", "", "run a single experiment by id")
	scale := flag.Int("scale", 1, "problem-size scale (1 = fast default, 4+ = paper-sized machine)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	out := flag.String("out", "", "also write each report to <dir>/<id>.txt")
	flag.Parse()

	cat := catalog()
	if *list {
		for _, e := range cat {
			fmt.Println(e.id)
		}
		return
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	failures := 0
	for _, e := range cat {
		if *id != "" && e.id != *id {
			continue
		}
		rep := e.run(experiments.Scale(*scale))
		fmt.Println(rep.String())
		if *out != "" {
			path := filepath.Join(*out, rep.ID+".txt")
			if err := os.WriteFile(path, []byte(rep.String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
		}
		failures += len(rep.Failed())
	}
	if *id != "" && failures == 0 {
		found := false
		for _, e := range cat {
			if e.id == *id {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q (use -list)\n", *id)
			os.Exit(2)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d check(s) failed\n", failures)
		os.Exit(1)
	}
}
