package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestSmoke runs the tool as a subprocess against one cheap benchmark and
// checks that the output file is valid JSON with the expected shape.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test (runs go test -bench)")
	}
	outFile := filepath.Join(t.TempDir(), "bench.json")
	cmd := exec.Command("go", "run", "./cmd/benchstat2json",
		"-bench", "BenchmarkHeapPushPop", "-benchtime", "1x", "-out", outFile)
	cmd.Dir = "../.." // the benchmarks live in the repository root package
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("benchstat2json exited with error: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var res output
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, raw)
	}
	if res.GoVersion == "" || res.GOOS == "" {
		t.Errorf("missing environment fields: %+v", res)
	}
	if len(res.Benchmarks) != 1 || res.Benchmarks[0].Name != "HeapPushPop" {
		t.Fatalf("benchmarks = %+v, want exactly HeapPushPop", res.Benchmarks)
	}
	b := res.Benchmarks[0]
	if b.Iters < 1 || b.NsPerOp <= 0 {
		t.Errorf("implausible benchmark numbers: %+v", b)
	}
	if _, ok := b.Metrics["events/s"]; !ok {
		t.Errorf("custom events/s metric missing: %+v", b.Metrics)
	}
}

// TestParseAveragesRepeatedRuns covers the -count>1 averaging path without a
// subprocess.
func TestParseAveragesRepeatedRuns(t *testing.T) {
	text := `
goos: linux
BenchmarkHeapPushPop-8   10   100.0 ns/op   50 events/s
BenchmarkHeapPushPop-8   10   300.0 ns/op   70 events/s
PASS
`
	got, err := parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(got))
	}
	b := got[0]
	if b.Name != "HeapPushPop" || b.Iters != 20 || b.NsPerOp != 200 || b.Metrics["events/s"] != 60 {
		t.Errorf("averaged benchmark %+v", b)
	}
}
