// Command benchstat2json runs the substrate microbenchmarks and writes
// their results as JSON, so the performance trajectory of the simulator
// (events/s, msgs/s, allocs/op) is tracked across PRs in a committed
// BENCH_<n>.json file.
//
// Usage:
//
//	go run ./cmd/benchstat2json -out BENCH_1.json
//	go run ./cmd/benchstat2json -bench 'BenchmarkKernel.*' -benchtime 10x
//
// The tool shells out to `go test -bench` (so the numbers are exactly what
// a developer sees) and parses the standard benchmark output format:
//
//	BenchmarkName  <N>  <value> ns/op  [<value> <unit>]...
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// defaultBench selects the substrate microbenchmarks: the goroutine and
// flat engine throughput targets (same machine, same workload), the sharded
// flat core and the P=10^5 scale pin, the capacity-sharded multi-core
// matrix (GOMAXPROCS x shards x P), the heap, handoff, and wait-elision
// paths, and the hook-overhead pairs (profiler recorder and metrics
// registry, each detached vs attached).
const defaultBench = "BenchmarkKernelEventThroughput|BenchmarkMachineMessageThroughput|BenchmarkFlatMachineMessageThroughput|BenchmarkFlatShardedMessageThroughput|BenchmarkFlatCapShardedMatrix|BenchmarkFlatBroadcastP100k|BenchmarkHeapPushPop|BenchmarkContextSwitch|BenchmarkProcessWait|BenchmarkSendRecvRecorderOff|BenchmarkSendRecvRecorderOn|BenchmarkSendRecvMetricsOff|BenchmarkSendRecvMetricsOn"

type benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics"`
}

type output struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Bench      string      `json:"bench_filter"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", defaultBench, "benchmark filter passed to go test -bench")
	benchtime := flag.String("benchtime", "5x", "value passed to go test -benchtime")
	count := flag.Int("count", 1, "value passed to go test -count")
	pkg := flag.String("pkg", ".", "package containing the benchmarks")
	out := flag.String("out", "BENCH_1.json", "output file")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchmem",
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count), *pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchstat2json: go test: %v\n", err)
		os.Exit(1)
	}
	benches, err := parse(string(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchstat2json: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintf(os.Stderr, "benchstat2json: no benchmark lines matched %q\n", *bench)
		os.Exit(1)
	}
	res := output{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      *bench,
		Benchmarks: benches,
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchstat2json: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchstat2json: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(benches))
}

// parse extracts benchmark result lines from go test output. Repeated runs
// of the same benchmark (-count > 1) are averaged.
func parse(text string) ([]benchmark, error) {
	type acc struct {
		b    benchmark
		runs int64
	}
	var order []string
	byName := map[string]*acc{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -<GOMAXPROCS> suffix go test appends on parallel hosts.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", line)
		}
		a, ok := byName[name]
		if !ok {
			a = &acc{b: benchmark{Name: name, Metrics: map[string]float64{}}}
			byName[name] = a
			order = append(order, name)
		}
		a.runs++
		a.b.Iters += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			if fields[i+1] == "ns/op" {
				a.b.NsPerOp += v
			} else {
				a.b.Metrics[fields[i+1]] += v
			}
		}
	}
	out := make([]benchmark, 0, len(order))
	for _, name := range order {
		a := byName[name]
		a.b.NsPerOp /= float64(a.runs)
		for k := range a.b.Metrics {
			a.b.Metrics[k] /= float64(a.runs)
		}
		out = append(out, a.b)
	}
	return out, sc.Err()
}
