package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/logp-model/logp/internal/service"
	"github.com/logp-model/logp/internal/stats"
)

// benchFile mirrors the BENCH_N.json shape emitted by cmd/benchstat2json so
// the selftest snapshot sits next to the kernel benchmarks.
type benchFile struct {
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	BenchFilter string       `json:"bench_filter"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	NsPerOp    int64              `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics"`
}

// selftestGrid builds the i-th sweep request. Each grid expands to 8 broadcast
// points; distinct grids differ in their seed axis, so `grids` grids cover
// 8*grids unique specs and every later pass over a grid is pure cache hits.
func selftestGrid(i int) service.SweepRequest {
	return service.SweepRequest{
		Base: service.JobSpec{Program: "broadcast", Machine: service.MachineSpec{P: 4, L: 6, O: 2, G: 4}},
		Axes: service.SweepAxes{
			P:    []int{4, 8},
			L:    []int64{2, 6},
			Seed: []int64{int64(2*i + 1), int64(2*i + 2)},
		},
	}
}

// runSelftest starts a daemon on an ephemeral loopback port, fires `requests`
// sweep submissions from `clients` concurrent clients over real HTTP, and
// writes a BENCH JSON snapshot of throughput, latency quantiles and cache
// effectiveness.
func runSelftest(cfg service.Config, requests, clients, grids int, outPath string) error {
	if requests < 1 || clients < 1 || grids < 1 {
		return fmt.Errorf("need at least 1 request, client and grid")
	}
	srv := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	bodies := make([][]byte, grids)
	for i := range bodies {
		req := selftestGrid(i)
		if bodies[i], err = json.Marshal(req); err != nil {
			return err
		}
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	latencies := make([]float64, requests) // ns, indexed by request
	var next atomic.Int64
	var failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/sweep", "application/json", bytes.NewReader(bodies[i%grids]))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
				latencies[i] = float64(time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failed.Load(); n > 0 {
		return fmt.Errorf("%d of %d sweep requests failed", n, requests)
	}

	st := srv.Stats()
	points := int64(requests) * 8 // every grid expands to 8 points
	lookups := st.Cache.Hits + st.Cache.Coalesced + st.Cache.Misses
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(st.Cache.Hits+st.Cache.Coalesced) / float64(lookups)
	}
	sort.Float64s(latencies)
	ms := func(q float64) float64 { return stats.Quantile(latencies, q) / 1e6 }

	out := benchFile{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		BenchFilter: "SelftestSweepThroughput",
		Benchmarks: []benchEntry{{
			Name:       "SelftestSweepThroughput",
			Iterations: requests,
			NsPerOp:    elapsed.Nanoseconds() / int64(requests),
			Metrics: map[string]float64{
				"req/s":          round2(float64(requests) / elapsed.Seconds()),
				"points/s":       round2(float64(points) / elapsed.Seconds()),
				"cache_hit_rate": round2(hitRate),
				"jobs_run":       float64(st.JobsRun),
				"clients":        float64(clients),
				"p50_ms":         round2(ms(0.50)),
				"p99_ms":         round2(ms(0.99)),
			},
		}},
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("selftest: %d sweep requests (%d points) in %v: %.0f req/s, hit rate %.3f, %d simulations run -> %s\n",
		requests, points, elapsed.Round(time.Millisecond),
		float64(requests)/elapsed.Seconds(), hitRate, st.JobsRun, outPath)
	return nil
}

// round2 keeps the snapshot diff-friendly.
func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
