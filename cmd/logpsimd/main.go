// Command logpsimd serves LogP simulations over HTTP with a content-addressed
// result cache.
//
// Because every simulation is a pure function of its job spec (the engines are
// bit-deterministic), the daemon hashes the canonical spec and serves repeat
// submissions from the cache byte-identically; N clients submitting the same
// spec concurrently share one simulation. See internal/service for the API.
//
// Usage:
//
//	logpsimd -addr 127.0.0.1:8080
//	curl -s localhost:8080/v1/jobs -d '{"program":"broadcast","machine":{"p":8,"l":6,"o":2,"g":4}}'
//
// The -selftest mode starts the daemon in-process, fires thousands of
// concurrent sweep requests at it, and writes a BENCH-style JSON snapshot of
// throughput, latency quantiles and cache hit rate.
//
// Observability: every request is logged to stderr via log/slog
// (-log-level, -log-format) with its spec hash, cache verdict and
// per-stage latencies; the same stage timings come back to the client in
// an X-Logpsimd-Timing header; GET /metrics exports wall-clock service
// metrics in Prometheus text format; and -pprof mounts net/http/pprof.
// All of it observes the service — simulation results and their cached
// bodies are byte-identical with observability on or off.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"github.com/logp-model/logp/internal/obs"
	"github.com/logp-model/logp/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		workers      = flag.Int("workers", 0, "max simulations in flight (0 = GOMAXPROCS)")
		cacheEntries = flag.Int("cache-entries", 0, "result cache entry bound (0 = 4096)")
		cacheMB      = flag.Int64("cache-mb", 0, "result cache size bound in MiB (0 = 256)")
		logLevel     = flag.String("log-level", "info", "request log level: debug | info | warn | error")
		logFormat    = flag.String("log-format", "text", "request log format on stderr: text | json")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default: profiling endpoints are not for open networks)")
		selftest     = flag.Bool("selftest", false, "run the load test against an in-process daemon and exit")
		stRequests   = flag.Int("st-requests", 2000, "selftest: total sweep requests to fire")
		stClients    = flag.Int("st-clients", 64, "selftest: concurrent clients")
		stGrids      = flag.Int("st-grids", 16, "selftest: distinct sweep grids cycled across requests")
		benchOut     = flag.String("bench-out", "", "selftest: write the BENCH JSON snapshot to this file (default stdout)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "logpsimd:", err)
		os.Exit(2)
	}
	cfg := service.Config{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		CacheBytes:   *cacheMB << 20,
		Logger:       logger,
		EnablePprof:  *pprofOn,
	}

	if *selftest {
		// The load test fires thousands of requests; per-request log lines
		// would drown stderr and perturb the numbers being measured.
		cfg.Logger = nil
		if err := runSelftest(cfg, *stRequests, *stClients, *stGrids, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "logpsimd: selftest:", err)
			os.Exit(1)
		}
		return
	}

	srv := service.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "logpsimd:", err)
		os.Exit(1)
	}
	// Print the resolved address so scripts (and the smoke test) can find an
	// ephemeral port.
	fmt.Printf("logpsimd listening on http://%s\n", ln.Addr())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "logpsimd:", err)
		os.Exit(1)
	}
}
