package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinary compiles the daemon into a temp dir. The smoke tests need the
// real binary: they exercise the flag surface and the listener announcement
// exactly as a deployment would.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "logpsimd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDaemonSmoke starts the daemon on an ephemeral port, submits the same
// job twice and checks the second is a byte-identical cache hit — the
// determinism-as-cache-key contract end to end over a real socket.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	bin := buildBinary(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	// The daemon announces its resolved address on the first stdout line.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listener announcement: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	idx := strings.Index(line, marker)
	if idx < 0 {
		t.Fatalf("unexpected announcement %q", line)
	}
	base := strings.TrimSpace(line[idx+len(marker):])

	spec := `{"program":"broadcast","machine":{"p":8,"l":6,"o":2,"g":4}}`
	post := func() (string, []byte) {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Logpsimd-Cache"), body
	}
	mark, cold := post()
	if mark != "miss" {
		t.Errorf("first submission marked %q, want miss", mark)
	}
	mark, warm := post()
	if mark != "hit" {
		t.Errorf("second submission marked %q, want hit", mark)
	}
	if !bytes.Equal(cold, warm) {
		t.Error("cache hit served different bytes than the cold run")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}

// TestSelftestWritesBench runs a small self-load-test and validates the
// BENCH snapshot it writes.
func TestSelftestWritesBench(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess load test")
	}
	bin := buildBinary(t)
	out := filepath.Join(t.TempDir(), "bench.json")
	start := time.Now()
	cmdOut, err := exec.Command(bin, "-selftest",
		"-st-requests", "300", "-st-clients", "16", "-st-grids", "4", "-bench-out", out).CombinedOutput()
	if err != nil {
		t.Fatalf("selftest: %v\n%s", err, cmdOut)
	}
	t.Logf("selftest took %v: %s", time.Since(start).Round(time.Millisecond), bytes.TrimSpace(cmdOut))

	raw, err := exec.Command("cat", out).Output()
	if err != nil {
		t.Fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		t.Fatalf("bench snapshot does not parse: %v\n%s", err, raw)
	}
	if len(bf.Benchmarks) != 1 || bf.Benchmarks[0].Name != "SelftestSweepThroughput" {
		t.Fatalf("unexpected snapshot: %+v", bf)
	}
	m := bf.Benchmarks[0].Metrics
	if m["req/s"] <= 0 || bf.Benchmarks[0].NsPerOp <= 0 {
		t.Errorf("throughput not measured: %v", m)
	}
	// 300 requests over 4 grids of 8 points: 32 simulations, the rest hits.
	if m["jobs_run"] != 32 {
		t.Errorf("jobs_run = %v, want 32", m["jobs_run"])
	}
	if m["cache_hit_rate"] < 0.9 {
		t.Errorf("cache hit rate %v, want > 0.9 on a 4-grid/300-request run", m["cache_hit_rate"])
	}
}
