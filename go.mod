module github.com/logp-model/logp

go 1.22
