// Machines example (Section 5): the machine database and the network
// simulator. Prints Table 1 with the T(M=160) column recomputed from the
// primary hardware numbers, derives LogP parameters for each machine, shows
// the average-distance table, and runs a small saturation sweep.
package main

import (
	"fmt"
	"log"

	"github.com/logp-model/logp/internal/machine"
	"github.com/logp-model/logp/internal/network"
	"github.com/logp-model/logp/internal/stats"
)

func main() {
	// --- Table 1: unloaded one-way message time.
	fmt.Println("Table 1: network timing parameters (T = Tsnd+Trcv + ceil(M/w) + H*r, M=160 bits)")
	tb := stats.Table{Header: []string{"machine", "network", "T(160) published", "T(160) recomputed", "o (us)", "L (us)", "g (us)"}}
	for _, s := range machine.Table1() {
		p := machine.DeriveLogP(s, 1024, 160, s.AvgHops)
		us := func(c int64) string { return fmt.Sprintf("%.1f", float64(c)*s.CycleNs/1000) }
		tb.Add(s.Name, s.Network, s.TM160, s.UnloadedTime(160, s.AvgHops), us(p.O), us(p.L), us(p.G))
	}
	fmt.Print(tb.String())

	// --- Average distance by topology.
	fmt.Println("\naverage inter-node distance (formula at P=1024 vs BFS at P=64):")
	dt := stats.Table{Header: []string{"topology", "@1024 (formula)", "@64 (measured)"}}
	for _, row := range []struct {
		kind string
		top  *network.Topology
	}{
		{"hypercube", network.Hypercube(6)},
		{"butterfly", network.Butterfly(6)},
		{"fat-tree-4", network.FatTree(4, 3)},
		{"3d-torus", network.Mesh3D(4, 4, 4, true)},
		{"2d-mesh", network.Mesh2D(8, 8, false)},
	} {
		f, err := network.AnalyticAverageDistance(row.kind, 1024)
		if err != nil {
			log.Fatal(err)
		}
		dt.Add(row.kind, f, row.top.AverageDistance())
	}
	fmt.Print(dt.String())

	// --- Saturation: the knee that motivates the capacity constraint.
	fmt.Println("\nlatency vs offered load, 8x8 mesh, uniform traffic:")
	mesh := network.Mesh2D(8, 8, false)
	results, err := network.SaturationSweep(mesh,
		[]float64{0.05, 0.1, 0.2, 0.4, 0.8},
		network.LoadConfig{RouterDelay: 2, Pattern: network.UniformTraffic, Horizon: 3000, Warmup: 500, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	st := stats.Table{Header: []string{"offered load", "mean latency", "p99", "throughput"}}
	for _, r := range results {
		st.Add(r.Load, r.MeanLatency, r.P99Latency, fmt.Sprintf("%.3f", r.Throughput))
	}
	fmt.Print(st.String())
	fmt.Printf("\nsaturation knee near load %.2f: below it latency is flat, past it queues explode.\n",
		network.SaturationLoad(results))
}
