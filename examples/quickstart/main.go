// Quickstart: build a LogP machine, look at its derived costs, and run the
// paper's two canonical kernels — the optimal broadcast (Figure 3) and the
// optimal summation (Figure 4) — comparing the analytic schedule times with
// the simulated execution.
package main

import (
	"fmt"
	"log"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

func main() {
	// A machine is four numbers: P processors, latency L, overhead o, gap g.
	params := core.Params{P: 8, L: 6, O: 2, G: 4}
	fmt.Println("machine:", params)
	fmt.Println("  point-to-point message:", params.PointToPoint(), "cycles (2o+L)")
	fmt.Println("  remote read:           ", params.RemoteRead(), "cycles (2L+4o)")
	fmt.Println("  network capacity:      ", params.Capacity(), "messages in transit per processor")

	// --- Broadcast: the optimal tree adapts its fan-out to L, o and g.
	bs, err := core.OptimalBroadcast(params, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal broadcast finishes at %d (binomial tree: %d, root-sends-all: %d)\n",
		bs.Finish, core.BinomialBroadcastTime(params), core.LinearBroadcastTime(params))

	// Execute it: every processor runs the same function against its ID.
	res, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
		got := collective.Broadcast(p, bs, 1, "hello")
		if p.ID() == params.P-1 {
			fmt.Printf("processor %d received %q at cycle %d\n", p.ID(), got, p.Now())
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulated broadcast time:", res.Time, "cycles (matches the schedule)")

	// --- Summation: how many values fit in a deadline, and the uneven
	// input distribution that achieves it.
	sumParams := core.Params{P: 8, L: 5, O: 2, G: 4}
	ss, err := core.OptimalSummation(sumParams, 28)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal summation: %d values in 28 cycles on %d processors\n", ss.TotalValues, ss.ProcsUsed)
	values := make([]float64, ss.TotalValues)
	for i := range values {
		values[i] = float64(i)
	}
	dist, err := collective.DistributeInputs(ss, values)
	if err != nil {
		log.Fatal(err)
	}
	for i, chunk := range dist {
		if chunk != nil {
			fmt.Printf("  processor %d sums %d inputs\n", i, len(chunk))
		}
	}
	var total float64
	res, err = logp.Run(logp.Config{Params: sumParams}, func(p *logp.Proc) {
		if sum, ok := collective.SumOptimal(p, ss, 1, dist[p.ID()]); ok {
			total = sum
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated summation: total %.0f in %d cycles\n", total, res.Time)
}
