// FFT example: the paper's flagship workload (Section 4.1). Runs the
// hybrid-layout FFT on the calibrated CM-5 machine, verifies the transform
// numerically against the sequential kernel, and shows why the
// communication schedule matters: the contention-free staggered remap
// against the naive all-to-processor-0-first remap.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/logp-model/logp/internal/algo/fft"
)

func main() {
	const n = 1 << 14
	const procs = 32

	rng := rand.New(rand.NewSource(42))
	input := make([]complex128, n)
	for i := range input {
		input[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}

	// Sequential reference.
	want := append([]complex128(nil), input...)
	if err := fft.Forward(want); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d-point FFT on a %d-processor simulated CM-5\n", n, procs)
	fmt.Printf("layouts: cyclic phase || one remap || blocked phase (Figure 5)\n\n")
	for _, sched := range []fft.RemapSchedule{fft.NaiveSchedule, fft.StaggeredSchedule} {
		cfg := fft.Config{
			N:        n,
			Machine:  fft.CM5Machine(procs),
			Cost:     fft.CM5Cost(),
			Schedule: sched,
		}
		got, ph, res, err := fft.Run(cfg, append([]complex128(nil), input...))
		if err != nil {
			log.Fatal(err)
		}
		var maxDiff float64
		for i := range got {
			if d := abs(got[i] - want[i]); d > maxDiff {
				maxDiff = d
			}
		}
		fmt.Printf("%-10s schedule: compute %.1f ms, remap %.1f ms (%.2f MB/s/proc), total %.1f ms\n",
			sched, ms(ph.Cyclic+ph.Blocked), ms(ph.Remap), ph.RemapRateMBps(fft.CM5TickNanos), ms(res.Time))
		fmt.Printf("           numerical error vs sequential: %.2e, stalls: %d cycles\n", maxDiff, res.TotalStall())
	}
	fmt.Println("\nthe staggered schedule keeps one sender per destination at all times;")
	fmt.Println("the naive schedule floods destination 0 and serializes on its receive gap.")
}

func ms(ticks int64) float64 { return float64(ticks) * fft.CM5TickNanos / 1e6 }

func abs(c complex128) float64 {
	r, i := real(c), imag(c)
	if r < 0 {
		r = -r
	}
	if i < 0 {
		i = -i
	}
	return r + i
}
