// Sorting example (Section 4.2.2): splitter sort's compute-remap-compute
// pattern against bitonic merge sort's oblivious exchanges, across machines
// with increasingly expensive communication. Bitonic moves every key
// log^2(P)/2 times; splitter moves it once — so the gap widens as g and L
// grow.
package main

import (
	"fmt"
	"log"
	"math/rand"
	gosort "sort"

	parsort "github.com/logp-model/logp/internal/algo/sort"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/stats"
)

func main() {
	const n = 8192
	const procs = 8
	rng := rand.New(rand.NewSource(7))
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.NormFloat64()
	}

	fmt.Printf("sorting %d keys on %d processors\n\n", n, procs)
	tb := stats.Table{Header: []string{"machine", "splitter", "bitonic", "bitonic/splitter"}}
	for _, m := range []struct {
		name    string
		l, o, g int64
	}{
		{"fast network", 6, 1, 2},
		{"CM-5-like ratios", 20, 4, 8},
		{"slow network", 100, 20, 40},
	} {
		params := core.Params{P: procs, L: m.l, O: m.o, G: m.g}
		var times [2]int64
		for i, algo := range []parsort.Algorithm{parsort.Splitter, parsort.Bitonic} {
			out, st, err := parsort.Run(parsort.Config{Machine: logp.Config{Params: params}, Algo: algo}, keys)
			if err != nil {
				log.Fatal(err)
			}
			if !gosort.Float64sAreSorted(out) {
				log.Fatalf("%v produced unsorted output", algo)
			}
			times[i] = st.Time
		}
		tb.Add(m.name, times[0], times[1], fmt.Sprintf("%.2fx", float64(times[1])/float64(times[0])))
	}
	fmt.Print(tb.String())
	fmt.Println("\nboth outputs verified sorted; the splitter advantage grows with g and L.")
}
