// Summation example: how the optimal LogP schedule adapts to the machine.
// For a fixed input size, sweeps the gap g and compares the optimal
// summation time against the naive balanced-binary-tree reduction, printing
// the shape of the optimal communication tree as it changes.
package main

import (
	"fmt"
	"log"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/stats"
)

func main() {
	const n = 4000
	fmt.Printf("summing %d values on 32 processors, L=20 o=4, sweeping g\n\n", n)
	tb := stats.Table{Header: []string{"g", "optimal T", "binary-tree T", "speedup", "root children", "simulated"}}
	for _, g := range []int64{4, 8, 16, 32, 64} {
		params := core.Params{P: 32, L: 20, O: 4, G: g}
		deadline := core.MinSumTime(params, n)
		schedule, err := core.OptimalSummation(params, deadline)
		if err != nil {
			log.Fatal(err)
		}
		baseline := core.BinaryTreeSumTime(params, n)

		// Execute the schedule to confirm the analytic time.
		values := make([]float64, schedule.TotalValues)
		for i := range values {
			values[i] = 1
		}
		dist, err := collective.DistributeInputs(schedule, values)
		if err != nil {
			log.Fatal(err)
		}
		res, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
			collective.SumOptimal(p, schedule, 1, dist[p.ID()])
		})
		if err != nil {
			log.Fatal(err)
		}
		tb.Add(g, deadline, baseline,
			fmt.Sprintf("%.2fx", float64(baseline)/float64(deadline)),
			len(schedule.Root.Children), res.Time)
	}
	fmt.Print(tb.String())
	fmt.Println("\nas g grows, receptions cost more of the root's time, so the optimal")
	fmt.Println("tree uses fewer, deeper children and longer local addition chains.")
}
