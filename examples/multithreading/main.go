// Multithreading example (Section 3.2): masking remote-access latency by
// multiplexing virtual processors on one physical processor. Shows the
// throughput rising until the request pipeline is full (about one virtual
// processor per gap-slot of the round trip), the ceiling at the bandwidth
// bound 1/g, and the damage a realistic context-switch cost does.
package main

import (
	"fmt"
	"log"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/stats"
	"github.com/logp-model/logp/internal/vp"
)

func main() {
	machine := logp.Config{Params: core.Params{P: 9, L: 64, O: 1, G: 8}}
	rtt := 2 * machine.Params.PointToPoint()
	vstar := int(rtt / machine.Params.SendInterval())
	fmt.Printf("machine: %v  round trip 2(2o+L) = %d cycles\n", machine.Params, rtt)
	fmt.Printf("pipeline limit: about RTT/g = %d virtual processors\n\n", vstar)

	base := vp.Config{Machine: machine, RequestsPerVP: 40, WorkPerReply: 2}
	tb := stats.Table{Header: []string{"VPs", "req/cycle", "speedup", "with 40-cycle switches"}}
	var first float64
	for _, v := range []int{1, 2, 4, 8, vstar, 2 * vstar} {
		cfg := base
		cfg.VPs = v
		r, err := vp.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.ContextSwitchCost = 40
		rc, err := vp.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if first == 0 {
			first = r.Throughput
		}
		tb.Add(v, fmt.Sprintf("%.4f", r.Throughput),
			fmt.Sprintf("%.1fx", r.Throughput/first),
			fmt.Sprintf("%.4f", rc.Throughput))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nthe bandwidth bound is 1/g = %.4f requests/cycle; beyond ~%d VPs\n",
		1/float64(machine.Params.SendInterval()), vstar)
	fmt.Println("extra virtual processors buy nothing — the Section 3.2 capacity argument.")
}
